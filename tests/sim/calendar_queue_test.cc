/**
 * @file
 * Calendar-queue dispatch order cross-checked against a reference
 * (tick, seq) priority model.
 *
 * The reference replays the same schedule through a stable sort on
 * (tick, insertion-sequence) — the contract the old binary-heap
 * kernel implemented directly. Streams are randomized to hit
 * same-tick FIFO ties, second-wheel (coarse-bucket) insertions and
 * spills, far-future (overflow-heap) insertions, heap -> wheel ->
 * ring cascades, and the boundaries between all three levels,
 * including events scheduled from inside callbacks on either side of
 * each window edge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace spk
{
namespace
{

/** One dispatched event: (tick, payload id). */
using Log = std::vector<std::pair<Tick, int>>;

/** Reference event: absolute tick + global insertion sequence. */
struct RefEvent
{
    Tick when;
    std::uint64_t seq;
    int id;
};

/**
 * Reference dispatcher: repeatedly extract the (tick, seq) minimum.
 * Spawned events are appended with later seq, exactly mirroring what
 * the kernel's schedule() calls do during dispatch.
 */
class RefQueue
{
  public:
    void
    schedule(Tick when, int id)
    {
        pending_.push_back(RefEvent{when, nextSeq_++, id});
    }

    Tick now() const { return now_; }

    /** Drain fully; @p spawn may schedule more events per dispatch. */
    template <typename SpawnFn>
    Log
    drain(SpawnFn &&spawn)
    {
        Log log;
        while (!pending_.empty()) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < pending_.size(); ++i) {
                const auto &e = pending_[i];
                const auto &b = pending_[best];
                if (e.when < b.when ||
                    (e.when == b.when && e.seq < b.seq)) {
                    best = i;
                }
            }
            const RefEvent ev = pending_[best];
            pending_.erase(pending_.begin() +
                           static_cast<std::ptrdiff_t>(best));
            now_ = ev.when;
            log.emplace_back(ev.when, ev.id);
            spawn(*this, ev.id);
        }
        return log;
    }

  private:
    std::vector<RefEvent> pending_;
    std::uint64_t nextSeq_ = 0;
    Tick now_ = 0;
};

/**
 * Deterministic delay generator shared by both queues: mixes ties
 * (delay 0), near-future ring hits, ring-window-edge values,
 * second-wheel insertions (including exact coarse-bucket-boundary
 * ticks), wheel-horizon-edge values, and deep overflow-heap
 * insertions beyond the second wheel.
 */
Tick
delayFor(Rng &rng)
{
    const Tick window = EventQueue::windowTicks();
    const Tick bucket = EventQueue::wheel2BucketTicks();
    const Tick span = EventQueue::wheel2SpanTicks();
    switch (rng.nextBelow(12)) {
      case 0:
        return 0; // same-tick tie
      case 1:
      case 2:
      case 3:
        return rng.nextBelow(16); // short reschedule chain
      case 4:
        return rng.nextInRange(window - 8, window + 8); // ring edge
      case 5:
        return rng.nextBelow(window); // anywhere in the ring
      case 6:
      case 7:
        return rng.nextInRange(window, span); // second wheel
      case 8:
        // Exact coarse-bucket boundary (+/- 1): events landing on the
        // first/last tick of a second-wheel bucket.
        return rng.nextInRange(8, span / bucket - 2) * bucket +
               rng.nextBelow(3) - 1;
      case 9:
        return rng.nextInRange(span - 8, span + 8); // wheel horizon
      default:
        return rng.nextInRange(span, 3 * span); // overflow heap
    }
}

/** Spawn budget: each seed event schedules a bounded follow-up tree. */
constexpr int kSeedEvents = 200;
constexpr int kMaxSpawnId = 4000;

Log
runKernel(std::uint64_t seed)
{
    EventQueue q;
    Rng arrival_rng(seed);
    Rng spawn_rng(seed ^ 0xabcdef);
    Log log;
    int next_id = kSeedEvents;

    // The spawning callback must draw delays in dispatch order, which
    // both queues reproduce identically, so the streams line up.
    struct Spawner
    {
        EventQueue *q;
        Rng *rng;
        Log *log;
        int *next_id;
        int id;

        void
        operator()() const
        {
            log->emplace_back(q->now(), id);
            if (id % 3 != 2 && *next_id < kMaxSpawnId) {
                const int child = (*next_id)++;
                q->scheduleAfter(delayFor(*rng),
                                 Spawner{q, rng, log, next_id, child});
            }
        }
    };

    for (int i = 0; i < kSeedEvents; ++i) {
        q.schedule(arrival_rng.nextBelow(64) +
                       delayFor(arrival_rng),
                   Spawner{&q, &spawn_rng, &log, &next_id, i});
    }
    q.run();
    return log;
}

Log
runReference(std::uint64_t seed)
{
    RefQueue q;
    Rng arrival_rng(seed);
    Rng spawn_rng(seed ^ 0xabcdef);
    int next_id = kSeedEvents;

    for (int i = 0; i < kSeedEvents; ++i)
        q.schedule(arrival_rng.nextBelow(64) + delayFor(arrival_rng), i);

    return q.drain([&](RefQueue &rq, int id) {
        if (id % 3 != 2 && next_id < kMaxSpawnId) {
            const int child = next_id++;
            rq.schedule(rq.now() + delayFor(spawn_rng), child);
        }
    });
}

TEST(CalendarQueue, MatchesReferenceOrderAcrossRandomStreams)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Log kernel = runKernel(seed);
        const Log ref = runReference(seed);
        ASSERT_EQ(kernel.size(), ref.size()) << "seed " << seed;
        for (std::size_t i = 0; i < kernel.size(); ++i) {
            ASSERT_EQ(kernel[i], ref[i])
                << "seed " << seed << " divergence at event " << i;
        }
    }
}

TEST(CalendarQueue, HeapRefillPreservesSameTickFifo)
{
    // An overflow-heap event and a later ring event at the same tick:
    // the heap one was scheduled first and must fire first. The ring
    // insertion only becomes possible after the window has advanced
    // (and thus drained the heap entry), so FIFO must hold across the
    // boundary.
    EventQueue q;
    const Tick far = 3 * EventQueue::wheel2SpanTicks() + 17;
    std::vector<int> order;
    q.schedule(far, [&order] { order.push_back(1); }); // heap
    q.schedule(far - 5, [&order, &q, far] {
        order.push_back(0);
        q.schedule(far, [&order] { order.push_back(2); }); // ring now
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), far);
}

TEST(CalendarQueue, SameTickFifoAcrossAllThreeLevels)
{
    // Three events at one tick T, scheduled while T sat beyond both
    // wheels (heap), within the second wheel, and within the ring
    // respectively. Dispatch must report them in schedule order: the
    // heap entry cascades heap -> wheel -> ring ahead of each later
    // insertion.
    EventQueue q;
    const Tick span = EventQueue::wheel2SpanTicks();
    const Tick t = 2 * span + 12345;
    std::vector<int> order;
    q.schedule(t, [&order] { order.push_back(0); }); // heap (t > span)
    q.schedule(t - span, [&order, &q, t] {
        order.push_back(-1);
        // t is now span ticks ahead: second-wheel range.
        q.schedule(t, [&order] { order.push_back(1); });
    });
    q.schedule(t - 100, [&order, &q, t] {
        order.push_back(-2);
        // t is now 100 ticks ahead: ring range.
        q.schedule(t, [&order] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{-1, -2, 0, 1, 2}));
    EXPECT_EQ(q.now(), t);
}

TEST(CalendarQueue, RingWheelAndHeapCountsTrackTheWindow)
{
    EventQueue q;
    const Tick window = EventQueue::windowTicks();
    const Tick span = EventQueue::wheel2SpanTicks();
    for (Tick t = 0; t < 10; ++t)
        q.schedule(t, [] {});
    for (Tick t = 0; t < 4; ++t)
        q.schedule(window + 100 + t, [] {}); // second wheel
    for (Tick t = 0; t < 3; ++t)
        q.schedule(span + window + 100 + t, [] {}); // heap
    EXPECT_EQ(q.ringSize(), 10u);
    EXPECT_EQ(q.wheel2Size(), 4u);
    EXPECT_EQ(q.heapSize(), 3u);
    EXPECT_EQ(q.size(), 17u);

    q.run(10); // draining the ring pulls the window forward
    EXPECT_EQ(q.ringSize(), 0u);
    EXPECT_EQ(q.wheel2Size(), 4u);
    EXPECT_EQ(q.heapSize(), 3u);
    // Draining the wheel bucket advances the window, which also pulls
    // the heap entries (now inside the wheel horizon) down a level.
    q.run(4);
    EXPECT_EQ(q.wheel2Size(), 3u);
    EXPECT_EQ(q.heapSize(), 0u);
    q.run();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.dispatched(), 17u);
}

TEST(CalendarQueue, PerLevelTransitCountersSplitTraffic)
{
    EventQueue q;
    const Tick window = EventQueue::windowTicks();
    const Tick span = EventQueue::wheel2SpanTicks();

    q.schedule(5, [] {}); // ring only: no transit anywhere
    EXPECT_EQ(q.wheel2Transits(), 0u);
    EXPECT_EQ(q.heapTransits(), 0u);

    q.schedule(window + 500, [] {}); // second wheel only
    EXPECT_EQ(q.wheel2Transits(), 1u);
    EXPECT_EQ(q.heapTransits(), 0u);

    // Beyond both wheels: one heap transit at schedule time, and one
    // wheel transit later when the window advance drains it heap ->
    // wheel (an event counts once per level it visits).
    q.schedule(span + window + 500, [] {});
    EXPECT_EQ(q.heapTransits(), 1u);
    EXPECT_EQ(q.wheel2Transits(), 1u);
    q.run();
    EXPECT_EQ(q.heapTransits(), 1u);
    EXPECT_EQ(q.wheel2Transits(), 2u);
}

TEST(CalendarQueue, LevelPeaksResetAtWindowStart)
{
    // Pin the measurement-window reset discipline: resetLevelPeaks()
    // restarts both trackers from the *current* populations, so a
    // bench window excludes warmup/replay parking but still sees its
    // own high-water marks.
    EventQueue q;
    const Tick window = EventQueue::windowTicks();
    const Tick span = EventQueue::wheel2SpanTicks();
    for (Tick t = 0; t < 5; ++t)
        q.schedule(span + window + 100 + t * 3, [] {}); // heap x5
    for (Tick t = 0; t < 3; ++t)
        q.schedule(window + 100 + t, [] {}); // wheel x3
    EXPECT_EQ(q.heapPeak(), 5u);
    EXPECT_EQ(q.wheel2Peak(), 3u);

    q.run(); // drain everything; peaks keep their high-water
    EXPECT_EQ(q.heapPeak(), 5u);
    EXPECT_GE(q.wheel2Peak(), 3u);

    q.resetLevelPeaks(); // window start on an empty queue
    EXPECT_EQ(q.heapPeak(), 0u);
    EXPECT_EQ(q.wheel2Peak(), 0u);

    const Tick base = q.now();
    q.schedule(base + window + 100, [] {});
    q.schedule(base + window + 101, [] {});
    EXPECT_EQ(q.wheel2Peak(), 2u); // new window tracks its own peak
    EXPECT_EQ(q.heapPeak(), 0u);

    // Resetting mid-population keeps the live count as the floor.
    q.schedule(base + span + window + 100, [] {});
    q.resetLevelPeaks();
    EXPECT_EQ(q.wheel2Peak(), 2u);
    EXPECT_EQ(q.heapPeak(), 1u);
    q.run();
}

TEST(CalendarQueue, JumpAcrossManyEmptyWindows)
{
    // Successive events dozens of ring windows apart force the
    // empty-ring jump path (advanceTo straight to the first occupied
    // second-wheel bucket).
    EventQueue q;
    const Tick window = EventQueue::windowTicks();
    std::vector<Tick> fired;
    for (int i = 1; i <= 16; ++i) {
        const Tick when = static_cast<Tick>(i) * 37 * window + i;
        q.schedule(when, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.run();
    ASSERT_EQ(fired.size(), 16u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    for (int i = 1; i <= 16; ++i)
        EXPECT_EQ(fired[i - 1], static_cast<Tick>(i) * 37 * window + i);
}

TEST(CalendarQueue, JumpAcrossManyEmptyWheelSpans)
{
    // The same shape several wheel horizons apart: every event starts
    // in the heap and the jump path must cascade heap -> wheel ->
    // ring repeatedly.
    EventQueue q;
    const Tick span = EventQueue::wheel2SpanTicks();
    std::vector<Tick> fired;
    for (int i = 1; i <= 8; ++i) {
        const Tick when = static_cast<Tick>(i) * 3 * span + i;
        q.schedule(when, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.run();
    ASSERT_EQ(fired.size(), 8u);
    for (int i = 1; i <= 8; ++i)
        EXPECT_EQ(fired[i - 1], static_cast<Tick>(i) * 3 * span + i);
}

TEST(CalendarQueue, WheelBucketBoundarySpills)
{
    // Events on the exact first and last tick of coarse buckets, plus
    // one straddling pair scheduled out of order: the spill is a
    // stable radix distribution, so (tick, schedule-order) must hold.
    EventQueue q;
    const Tick bucket = EventQueue::wheel2BucketTicks();
    const Tick window = EventQueue::windowTicks();
    const Tick b0 = ((window / bucket) + 10) * bucket; // bucket start
    Log log;
    auto rec = [&log, &q](int id) {
        return [&log, &q, id] { log.emplace_back(q.now(), id); };
    };
    q.schedule(b0 + bucket, rec(0));     // next bucket's first tick
    q.schedule(b0 + bucket - 1, rec(1)); // this bucket's last tick
    q.schedule(b0, rec(2));              // this bucket's first tick
    q.schedule(b0, rec(3));              // same-tick tie on the edge
    q.schedule(b0 + bucket, rec(4));     // tie on the next edge
    q.run();
    const Log expect = {{b0, 2},
                        {b0, 3},
                        {b0 + bucket - 1, 1},
                        {b0 + bucket, 0},
                        {b0 + bucket, 4}};
    EXPECT_EQ(log, expect);
}

TEST(CalendarQueue, FirstBucketWrapsAcrossTheWindowEdge)
{
    // Park the cursor near the top of the ring (slot 4090, summary
    // word 63) and exercise the scan wrap paths: a hit in the head
    // word above the cursor and a summary rotate into word 0. (The
    // tail of the cursor's own word is structurally unreachable in
    // the ring: the window end is coarse-aligned, so the live span
    // from a mid-bucket cursor is always shorter than a full lap.)
    EventQueue q;
    const Tick window = EventQueue::windowTicks();
    q.schedule(window - 6, [] {});
    q.run(); // now_ == base_ == 4090
    ASSERT_EQ(q.now(), window - 6);

    std::vector<Tick> fired;
    auto rec = [&fired, &q] { fired.push_back(q.now()); };
    q.schedule(2 * window - 7, rec); // past the frontier: second wheel
    q.schedule(window + 4, rec);     // slot 4: wraps into word 0
    q.schedule(window - 3, rec);     // slot 4093: head-word hit
    EXPECT_EQ(q.ringSize(), 2u);
    EXPECT_EQ(q.wheel2Size(), 1u); // spills back into a high slot later
    EXPECT_EQ(q.nextEventTick(), window - 3);
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{window - 3, window + 4,
                                        2 * window - 7}));
}

TEST(CalendarQueue, NextEventTickSeesAllThreeLevels)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventTick(), kTickMax);
    const Tick span = EventQueue::wheel2SpanTicks();
    const Tick far = 2 * span + 9;
    q.schedule(far, [] {});
    EXPECT_EQ(q.nextEventTick(), far); // heap only
    const Tick mid = EventQueue::windowTicks() + 2000;
    q.schedule(mid + 7, [] {});
    EXPECT_EQ(q.nextEventTick(), mid + 7); // wheel beats heap
    // A later-scheduled event earlier in the same coarse bucket: the
    // bucket FIFO is unordered, so nextEventTick must walk it.
    q.schedule(mid, [] {});
    EXPECT_EQ(q.nextEventTick(), mid);
    q.schedule(3, [] {});
    EXPECT_EQ(q.nextEventTick(), 3u); // ring wins
    q.run();
    EXPECT_EQ(q.nextEventTick(), kTickMax);
}

TEST(CalendarQueue, RandomSchedulesNearTickMax)
{
    // Ticks within a few wheel spans of kTickMax: every placement and
    // window-advance computation must use the subtraction/coarse
    // forms (base_ + windowTicks() would overflow here). Expected
    // order is the stable (tick, schedule-order) sort.
    const Tick span = EventQueue::wheel2SpanTicks();
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        EventQueue q;
        Rng rng(seed * 77);
        Log log;
        std::vector<std::pair<Tick, int>> expect;
        for (int i = 0; i < 200; ++i) {
            const Tick when = kTickMax - rng.nextBelow(3 * span);
            expect.emplace_back(when, i);
            q.schedule(when,
                       [&log, &q, i] { log.emplace_back(q.now(), i); });
        }
        // A deliberate batch exactly at the sentinel-adjacent top.
        for (int i = 200; i < 204; ++i) {
            expect.emplace_back(kTickMax, i);
            q.schedule(kTickMax,
                       [&log, &q, i] { log.emplace_back(q.now(), i); });
        }
        std::stable_sort(expect.begin(), expect.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        q.run();
        ASSERT_EQ(log.size(), expect.size()) << "seed " << seed;
        for (std::size_t i = 0; i < log.size(); ++i) {
            ASSERT_EQ(log[i], expect[i])
                << "seed " << seed << " divergence at event " << i;
        }
        EXPECT_EQ(q.now(), kTickMax);
    }
}

} // namespace
} // namespace spk
