/**
 * @file
 * DeviceArray determinism and aggregation.
 *
 * The sharded driver must produce per-device MetricsSnapshots that
 * are bit-identical to running the same jobs sequentially, for any
 * thread count (the claim order may differ; the results may not).
 */

#include <gtest/gtest.h>

#include "sim/device_array.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

std::vector<DeviceJob>
makeJobs(unsigned devices, SchedulerKind kind = SchedulerKind::SPK3)
{
    std::vector<DeviceJob> jobs;
    for (unsigned d = 0; d < devices; ++d) {
        DeviceJob job;
        job.cfg = SsdConfig::withChips(8);
        job.cfg.geometry.blocksPerPlane = 16;
        job.cfg.geometry.pagesPerBlock = 32;
        job.cfg.scheduler = kind;
        job.cfg.seed = 7000 + d;

        SyntheticConfig wl;
        wl.numIos = 150;
        wl.spanBytes = job.cfg.geometry.totalPages() *
                       job.cfg.geometry.pageSizeBytes / 2;
        wl.seed = 31 + d;
        job.trace = generateSynthetic(wl);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(DeviceArray, ShardedMatchesSequentialBitForBit)
{
    const auto jobs = makeJobs(8);

    DeviceArray sequential(jobs);
    sequential.run(1);

    for (const unsigned threads : {2u, 4u, 8u}) {
        DeviceArray sharded(jobs);
        sharded.run(threads);
        ASSERT_EQ(sharded.results().size(), 8u);
        for (std::size_t d = 0; d < 8; ++d) {
            EXPECT_EQ(sequential.results()[d], sharded.results()[d])
                << "device " << d << " diverged at " << threads
                << " threads";
        }
    }
}

TEST(DeviceArray, RepeatedShardedRunsAreStable)
{
    const auto jobs = makeJobs(4);
    DeviceArray first(jobs);
    first.run(4);
    DeviceArray second(jobs);
    second.run(4);
    for (std::size_t d = 0; d < 4; ++d)
        EXPECT_EQ(first.results()[d], second.results()[d]);
}

TEST(DeviceArray, DistinctSeedsProduceDistinctDevices)
{
    // Guard against accidentally sharing a workload or RNG stream:
    // different seeds must not collapse to identical snapshots.
    const auto jobs = makeJobs(3);
    DeviceArray array(jobs);
    array.run(3);
    EXPECT_FALSE(array.results()[0] == array.results()[1]);
    EXPECT_FALSE(array.results()[1] == array.results()[2]);
}

TEST(DeviceArray, ThreadCountClampsToJobCount)
{
    const auto jobs = makeJobs(2);
    DeviceArray reference(jobs);
    reference.run(1);
    DeviceArray oversubscribed(jobs);
    oversubscribed.run(64); // clamped to 2 workers
    for (std::size_t d = 0; d < 2; ++d)
        EXPECT_EQ(reference.results()[d], oversubscribed.results()[d]);
}

TEST(DeviceArray, AggregateSumsCountersAndWeightsMeans)
{
    const auto jobs = makeJobs(4);
    DeviceArray array(jobs);
    array.run(4);
    const auto fleet = DeviceArray::aggregate(array.results());

    std::uint64_t ios = 0;
    std::uint64_t bytes = 0;
    std::uint64_t txns = 0;
    double bw = 0.0;
    Tick makespan = 0;
    Tick max_lat = 0;
    for (const auto &m : array.results()) {
        ios += m.iosCompleted;
        bytes += m.bytesRead + m.bytesWritten;
        txns += m.transactions;
        bw += m.bandwidthKBps;
        makespan = std::max(makespan, m.makespan);
        max_lat = std::max(max_lat, m.maxLatencyNs);
    }
    EXPECT_EQ(fleet.iosCompleted, ios);
    EXPECT_EQ(fleet.bytesRead + fleet.bytesWritten, bytes);
    EXPECT_EQ(fleet.transactions, txns);
    EXPECT_DOUBLE_EQ(fleet.bandwidthKBps, bw);
    EXPECT_EQ(fleet.makespan, makespan);
    EXPECT_EQ(fleet.maxLatencyNs, max_lat);
    EXPECT_EQ(fleet.scheduler, "SPK3");

    // Weighted means stay inside the per-device envelope.
    double lo = 1e300;
    double hi = 0.0;
    for (const auto &m : array.results()) {
        lo = std::min(lo, m.avgLatencyNs);
        hi = std::max(hi, m.avgLatencyNs);
    }
    EXPECT_GE(fleet.avgLatencyNs, lo);
    EXPECT_LE(fleet.avgLatencyNs, hi);
}

TEST(DeviceArray, MixedSchedulersReportMixed)
{
    auto jobs = makeJobs(2);
    jobs[1].cfg.scheduler = SchedulerKind::VAS;
    DeviceArray array(std::move(jobs));
    array.run(2);
    EXPECT_EQ(DeviceArray::aggregate(array.results()).scheduler,
              "mixed");
}

TEST(DeviceArray, EmptyJobListDies)
{
    EXPECT_DEATH(DeviceArray(std::vector<DeviceJob>{}), "no jobs");
}

} // namespace
} // namespace spk
