/**
 * @file
 * DeviceArray determinism and aggregation.
 *
 * The sharded driver must produce per-device MetricsSnapshots that
 * are bit-identical to running the same jobs sequentially, for any
 * thread count (the claim order may differ; the results may not).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "sim/device_array.hh"
#include "sim/estimator.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

std::vector<DeviceJob>
makeJobs(unsigned devices, SchedulerKind kind = SchedulerKind::SPK3)
{
    std::vector<DeviceJob> jobs;
    for (unsigned d = 0; d < devices; ++d) {
        DeviceJob job;
        job.cfg = SsdConfig::withChips(8);
        job.cfg.geometry.blocksPerPlane = 16;
        job.cfg.geometry.pagesPerBlock = 32;
        job.cfg.scheduler = kind;
        job.cfg.seed = 7000 + d;

        SyntheticConfig wl;
        wl.numIos = 150;
        wl.spanBytes = job.cfg.geometry.totalPages() *
                       job.cfg.geometry.pageSizeBytes / 2;
        wl.seed = 31 + d;
        job.trace = generateSynthetic(wl);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(DeviceArray, ShardedMatchesSequentialBitForBit)
{
    const auto jobs = makeJobs(8);

    DeviceArray sequential(jobs);
    sequential.run(1);

    for (const unsigned threads : {2u, 4u, 8u}) {
        DeviceArray sharded(jobs);
        sharded.run(threads);
        ASSERT_EQ(sharded.results().size(), 8u);
        for (std::size_t d = 0; d < 8; ++d) {
            EXPECT_EQ(sequential.results()[d], sharded.results()[d])
                << "device " << d << " diverged at " << threads
                << " threads";
        }
    }
}

TEST(DeviceArray, RepeatedShardedRunsAreStable)
{
    const auto jobs = makeJobs(4);
    DeviceArray first(jobs);
    first.run(4);
    DeviceArray second(jobs);
    second.run(4);
    for (std::size_t d = 0; d < 4; ++d)
        EXPECT_EQ(first.results()[d], second.results()[d]);
}

TEST(DeviceArray, DistinctSeedsProduceDistinctDevices)
{
    // Guard against accidentally sharing a workload or RNG stream:
    // different seeds must not collapse to identical snapshots.
    const auto jobs = makeJobs(3);
    DeviceArray array(jobs);
    array.run(3);
    EXPECT_FALSE(array.results()[0] == array.results()[1]);
    EXPECT_FALSE(array.results()[1] == array.results()[2]);
}

TEST(DeviceArray, ThreadCountClampsToJobCount)
{
    const auto jobs = makeJobs(2);
    DeviceArray reference(jobs);
    reference.run(1);
    DeviceArray oversubscribed(jobs);
    oversubscribed.run(64); // clamped to 2 workers
    for (std::size_t d = 0; d < 2; ++d)
        EXPECT_EQ(reference.results()[d], oversubscribed.results()[d]);
}

TEST(DeviceArray, AggregateSumsCountersAndWeightsMeans)
{
    const auto jobs = makeJobs(4);
    DeviceArray array(jobs);
    array.run(4);
    const auto fleet = DeviceArray::aggregate(array.results());

    std::uint64_t ios = 0;
    std::uint64_t bytes = 0;
    std::uint64_t txns = 0;
    double bw = 0.0;
    Tick makespan = 0;
    Tick max_lat = 0;
    for (const auto &m : array.results()) {
        ios += m.iosCompleted;
        bytes += m.bytesRead + m.bytesWritten;
        txns += m.transactions;
        bw += m.bandwidthKBps;
        makespan = std::max(makespan, m.makespan);
        max_lat = std::max(max_lat, m.maxLatencyNs);
    }
    EXPECT_EQ(fleet.iosCompleted, ios);
    EXPECT_EQ(fleet.bytesRead + fleet.bytesWritten, bytes);
    EXPECT_EQ(fleet.transactions, txns);
    EXPECT_DOUBLE_EQ(fleet.bandwidthKBps, bw);
    EXPECT_EQ(fleet.makespan, makespan);
    EXPECT_EQ(fleet.maxLatencyNs, max_lat);
    EXPECT_EQ(fleet.scheduler, "SPK3");

    // Weighted means stay inside the per-device envelope.
    double lo = 1e300;
    double hi = 0.0;
    for (const auto &m : array.results()) {
        lo = std::min(lo, m.avgLatencyNs);
        hi = std::max(hi, m.avgLatencyNs);
    }
    EXPECT_GE(fleet.avgLatencyNs, lo);
    EXPECT_LE(fleet.avgLatencyNs, hi);
}

TEST(DeviceArray, MixedSchedulersReportMixed)
{
    auto jobs = makeJobs(2);
    jobs[1].cfg.scheduler = SchedulerKind::VAS;
    DeviceArray array(std::move(jobs));
    array.run(2);
    EXPECT_EQ(DeviceArray::aggregate(array.results()).scheduler,
              "mixed");
}

TEST(DeviceArray, ZeroJobsRunsToEmptyResults)
{
    // A fully filtered-out sweep expands to zero jobs; that must be
    // a no-op, not an error.
    DeviceArray array(std::vector<DeviceJob>{});
    EXPECT_TRUE(array.run(4).empty());
    EXPECT_EQ(array.completedCount(), 0u);
    EXPECT_TRUE(DeviceArray::aggregate(array.results()) ==
                MetricsSnapshot{});
}

TEST(DeviceArray, ProgressCallbackFiresOncePerDevice)
{
    const auto jobs = makeJobs(6);
    DeviceArray reference(jobs);
    reference.run(1);

    DeviceArray array(jobs);
    std::vector<int> seen(jobs.size(), 0);
    std::size_t calls = 0;
    DeviceArrayHooks hooks;
    // DeviceArray serializes the callback, so plain counters suffice.
    // Compare against an independent sequential run: the callback
    // must hand over the fully-written snapshot of its device.
    hooks.onDeviceDone = [&](std::size_t index,
                             const MetricsSnapshot &m) {
        ++calls;
        ++seen[index];
        EXPECT_TRUE(m == reference.results()[index])
            << "callback for device " << index
            << " saw a snapshot differing from the sequential run";
    };
    array.run(3, hooks);

    EXPECT_EQ(calls, jobs.size());
    for (std::size_t d = 0; d < jobs.size(); ++d) {
        EXPECT_EQ(seen[d], 1) << "device " << d;
        EXPECT_TRUE(array.completed(d));
    }
    EXPECT_EQ(array.completedCount(), jobs.size());
}

TEST(DeviceArray, CancellationKeepsCompletedResultsValid)
{
    const auto jobs = makeJobs(8);
    DeviceArray reference(jobs);
    reference.run(1);

    constexpr unsigned kThreads = 2;
    constexpr std::size_t kStopAfter = 3;
    std::atomic<bool> stop{false};
    std::size_t done = 0;
    DeviceArrayHooks hooks;
    hooks.stop = &stop;
    hooks.onDeviceDone = [&](std::size_t, const MetricsSnapshot &) {
        if (++done == kStopAfter)
            stop.store(true, std::memory_order_relaxed);
    };

    DeviceArray cancelled(jobs);
    cancelled.run(kThreads, hooks);

    // Workers stop claiming once the flag is set; devices already in
    // flight still finish.
    EXPECT_GE(cancelled.completedCount(), kStopAfter);
    EXPECT_LE(cancelled.completedCount(), kStopAfter + kThreads - 1);
    EXPECT_LT(cancelled.completedCount(), jobs.size());

    for (std::size_t d = 0; d < jobs.size(); ++d) {
        if (cancelled.completed(d)) {
            EXPECT_EQ(cancelled.results()[d], reference.results()[d])
                << "completed device " << d
                << " diverged under cancellation";
        } else {
            EXPECT_TRUE(cancelled.results()[d] == MetricsSnapshot{})
                << "uncompleted device " << d
                << " should hold the default snapshot";
        }
    }
}

TEST(DeviceArray, CancellationBeforeStartRunsNothing)
{
    const auto jobs = makeJobs(2);
    std::atomic<bool> stop{true};
    DeviceArrayHooks hooks;
    hooks.stop = &stop;
    DeviceArray array(jobs);
    array.run(2, hooks);
    EXPECT_EQ(array.completedCount(), 0u);
}

TEST(DeviceArray, RandomShuffledOrdersAreBitIdentical)
{
    // The cell-order policy redirects which cell a worker claims
    // next; results are indexed by cell, so ANY permutation must be
    // bit-identical to expansion order. Exercise several seeded
    // random shuffles at several thread counts.
    auto jobs = makeJobs(6);
    jobs[1].fidelity = Fidelity::Fast;
    jobs[4].fidelity = Fidelity::Fast;

    DeviceArrayHooks expansion;
    expansion.order = expansionOrder();
    DeviceArray reference(jobs);
    reference.run(1, expansion);

    std::mt19937_64 rng(1234);
    for (const unsigned threads : {1u, 2u, 4u}) {
        std::vector<std::size_t> perm(jobs.size());
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        std::shuffle(perm.begin(), perm.end(), rng);

        DeviceArrayHooks hooks;
        hooks.order = [perm](const std::vector<DeviceJob> &) {
            return perm;
        };
        DeviceArray shuffled(jobs);
        shuffled.run(threads, hooks);
        ASSERT_EQ(shuffled.results().size(), jobs.size());
        for (std::size_t d = 0; d < jobs.size(); ++d) {
            EXPECT_EQ(reference.results()[d], shuffled.results()[d])
                << "cell " << d << " diverged under a shuffled "
                << "claim order at " << threads << " threads";
        }
    }
}

TEST(DeviceArray, CostGuidedDefaultMatchesExpansionOrderResults)
{
    // The default policy (longest-job-first by the analytic
    // estimator) must also be results-invariant, and its cost model
    // must rank a Fast cell below an otherwise-identical Exact cell.
    auto jobs = makeJobs(4);
    jobs[2].fidelity = Fidelity::Fast;

    DeviceArrayHooks expansion;
    expansion.order = expansionOrder();
    DeviceArray reference(jobs);
    reference.run(1, expansion);

    DeviceArray cost_guided(jobs);
    cost_guided.run(2); // hooks default to costGuidedOrder()
    for (std::size_t d = 0; d < jobs.size(); ++d)
        EXPECT_EQ(reference.results()[d], cost_guided.results()[d]);

    const auto order = costGuidedOrder()(jobs);
    ASSERT_EQ(order.size(), jobs.size());
    // The lone Fast cell is the cheapest, so it is claimed last.
    EXPECT_EQ(order.back(), 2u);

    DeviceJob heavy = jobs[0];
    heavy.preconditionGc = true;
    EXPECT_GT(estimateJobCost(heavy), estimateJobCost(jobs[0]));
}

TEST(DeviceArray, NonPermutationOrderPolicyDies)
{
    const auto jobs = makeJobs(2);
    DeviceArrayHooks short_hooks;
    short_hooks.order = [](const std::vector<DeviceJob> &) {
        return std::vector<std::size_t>{0};
    };
    DeviceArray a(jobs);
    EXPECT_DEATH(a.run(1, short_hooks), "cell-order policy");

    DeviceArrayHooks dup_hooks;
    dup_hooks.order = [](const std::vector<DeviceJob> &) {
        return std::vector<std::size_t>{1, 1};
    };
    DeviceArray b(jobs);
    EXPECT_DEATH(b.run(1, dup_hooks), "not a permutation");
}

TEST(DeviceArray, RunRecordsPerCellAndPerWorkerSeconds)
{
    const auto jobs = makeJobs(3);
    DeviceArray array(jobs);
    array.run(2);
    ASSERT_EQ(array.cellSeconds().size(), jobs.size());
    double total = 0.0;
    for (std::size_t d = 0; d < jobs.size(); ++d) {
        EXPECT_GT(array.cellSeconds()[d], 0.0) << "cell " << d;
        total += array.cellSeconds()[d];
    }
    ASSERT_EQ(array.threadBusySeconds().size(), 2u);
    double busy = 0.0;
    for (const double b : array.threadBusySeconds())
        busy += b;
    // Worker busy time is exactly the sum of the cells it ran.
    EXPECT_NEAR(busy, total, 1e-9);
    EXPECT_GT(array.runWallSeconds(), 0.0);
}

TEST(DeviceArray, CapturesIoResultsOnRequest)
{
    auto jobs = makeJobs(2);
    jobs[0].captureIoResults = true;
    DeviceArray array(std::move(jobs));
    array.run(2);
    const auto &series = array.ioResults(0);
    ASSERT_EQ(series.size(), array.results()[0].iosCompleted);
    for (const auto &io : series)
        EXPECT_GE(io.completed, io.arrival);
    EXPECT_TRUE(array.ioResults(1).empty());
}

} // namespace
} // namespace spk
