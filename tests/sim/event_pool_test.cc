/**
 * @file
 * Pooled-event-kernel properties: same-tick FIFO ordering survives the
 * pool refactor, event nodes are recycled rather than re-allocated,
 * and a steady-state EventQueue::run over a million events performs
 * zero heap allocations.
 */

#include <gtest/gtest.h>

#include <vector>

#define SPK_COUNT_ALLOCS
#include "sim/alloc_counter.hh"
#include "sim/event_queue.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

TEST(EventPool, SameTickFifoOrderAcrossRecycledNodes)
{
    EventQueue q;
    std::vector<int> order;
    // Two generations of same-tick events: the second generation is
    // scheduled from inside dispatch and reuses freed pool nodes.
    for (int i = 0; i < 16; ++i) {
        q.schedule(5, [&order, &q, i] {
            order.push_back(i);
            q.schedule(5, [&order, i] { order.push_back(100 + i); });
        });
    }
    q.run();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(order[i], i);
        EXPECT_EQ(order[16 + i], 100 + i);
    }
}

TEST(EventPool, NodesAreRecycledNotReallocated)
{
    EventQueue q;
    int fired = 0;
    // Burst to establish the pool high-water mark.
    for (int i = 0; i < 1000; ++i)
        q.schedule(i, [&fired] { ++fired; });
    q.run();
    const std::size_t capacity = q.poolCapacity();
    EXPECT_GE(capacity, 1000u);
    EXPECT_EQ(q.poolFree(), capacity);

    // Any number of subsequent schedule/dispatch cycles within the
    // high-water mark reuses pooled nodes; capacity must not grow.
    for (int cycle = 0; cycle < 50; ++cycle) {
        for (int i = 0; i < 1000; ++i)
            q.scheduleAfter(1 + i, [&fired] { ++fired; });
        q.run();
    }
    EXPECT_EQ(q.poolCapacity(), capacity);
    EXPECT_EQ(q.poolFree(), capacity);
    EXPECT_EQ(fired, 51 * 1000);
}

TEST(EventPool, MillionEventSteadyStateRunIsAllocationFree)
{
    EventQueue q;
    std::uint64_t count = 0;
    constexpr std::uint64_t kTotal = 1'000'000;

    // 64 self-rescheduling chains; warm up until the pool and the
    // heap's backing vector hit their high-water marks.
    struct Chain
    {
        EventQueue *q;
        std::uint64_t *count;
        int i;
        void
        operator()() const
        {
            if (++*count < kTotal)
                q->scheduleAfter(1 + (i % 7), *this);
        }
    };
    for (int i = 0; i < 64; ++i)
        q.schedule(i % 5, Chain{&q, &count, i});
    q.run(10'000); // warmup: pool chunks + heap vector growth happen here

    const AllocWindow window;
    q.run();
    const std::uint64_t allocs_during = window.count();

    // Every chain fires one final time after the target is crossed.
    EXPECT_GE(count, kTotal);
    EXPECT_EQ(allocs_during, 0u)
        << "steady-state event loop must not touch the heap";
}

TEST(EventPool, SteadyStateHostIoEnqueueIsAllocationFree)
{
    // The assertion window covers the whole host-I/O path, enqueue
    // included: IoRequest slots, per-page MemoryRequests and the
    // completion bitmap recycle through slabs keyed by the bounded
    // NCQ queue depth, the LPN hazard chains are intrusive, and every
    // flow-through queue is a RingDeque — so once the warmup run has
    // established all high-water marks, submitting and completing
    // further I/Os must not touch the heap at all.
    SsdConfig cfg = SsdConfig::withChips(8);
    cfg.geometry.blocksPerPlane = 16;
    cfg.geometry.pagesPerBlock = 32;
    cfg.scheduler = SchedulerKind::SPK3;
    Ssd ssd(cfg);

    SyntheticConfig wl;
    wl.numIos = 1100;
    wl.readFraction = 1.0; // reads backfill mappings; no GC pressure
    wl.spanBytes = cfg.geometry.totalPages() *
                   cfg.geometry.pageSizeBytes / 4;
    wl.seed = 5;
    ssd.replay(generateSynthetic(wl));
    ssd.run();

    wl.numIos = 300;
    wl.seed = 5; // same stream => warmed LPN set, no fresh backfill
    const Trace probe = generateSynthetic(wl);
    const Tick start = ssd.events().now();

    const AllocWindow window;
    for (const auto &rec : probe) {
        ssd.submitAt(start + rec.arrival, rec.isWrite, rec.offsetBytes,
                     rec.sizeBytes, rec.fua);
    }
    ssd.run();
    EXPECT_EQ(window.count(), 0u)
        << "steady-state host-I/O enqueue+completion must not "
           "allocate";
    EXPECT_GE(ssd.metrics().iosCompleted, 1400u);
}

TEST(EventPool, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(9, [] {}), "past");
}

} // namespace
} // namespace spk
