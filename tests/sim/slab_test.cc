/**
 * @file
 * Unit tests for the reusable chunked-slab arena (sim/slab.hh), plus
 * a randomized cross-check of the arena-based GC engine against a
 * map-based reference model with the bookkeeping shape of the
 * pre-refactor GcManager (per-request owner map, per-batch state
 * map): same sequencing, no leaks, no stray completions.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/rng.hh"
#include "sim/slab.hh"
#include "ssd/gc_manager.hh"

namespace spk
{
namespace
{

struct Node
{
    std::uint64_t value = 0;
    Node *slabNext = nullptr;
};

TEST(Slab, GrowsByChunkAndRecyclesLifo)
{
    Slab<Node> slab(4);
    EXPECT_EQ(slab.capacity(), 0u);
    EXPECT_EQ(slab.freeCount(), 0u);

    Node *a = slab.acquire();
    EXPECT_EQ(slab.capacity(), 4u);
    EXPECT_EQ(slab.freeCount(), 3u);
    EXPECT_EQ(slab.liveCount(), 1u);
    EXPECT_EQ(a->slabNext, nullptr);

    slab.release(a);
    EXPECT_EQ(slab.freeCount(), 4u);
    // LIFO: the most recently released object comes back first.
    EXPECT_EQ(slab.acquire(), a);
}

TEST(Slab, ReserveReachesRequestedCapacity)
{
    Slab<Node> slab(8);
    slab.reserve(20);
    EXPECT_GE(slab.capacity(), 20u);
    EXPECT_EQ(slab.capacity() % 8, 0u); // whole chunks only
    EXPECT_EQ(slab.freeCount(), slab.capacity());
}

TEST(Slab, AddressesStayStableAcrossGrowth)
{
    Slab<Node> slab(2);
    std::vector<Node *> live;
    for (std::uint64_t i = 0; i < 500; ++i) {
        Node *n = slab.acquire();
        n->value = i;
        live.push_back(n);
    }
    // Growth must never move or scrub previously acquired objects.
    std::set<Node *> distinct(live.begin(), live.end());
    EXPECT_EQ(distinct.size(), live.size());
    for (std::uint64_t i = 0; i < live.size(); ++i)
        EXPECT_EQ(live[i]->value, i);
    EXPECT_EQ(slab.liveCount(), live.size());
}

TEST(Slab, SteadyStateStopsGrowing)
{
    Slab<Node> slab(16);
    std::vector<Node *> live;
    for (int i = 0; i < 100; ++i)
        live.push_back(slab.acquire());
    const std::size_t high_water = slab.capacity();
    // Churn at or below the high-water mark: capacity must not move.
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        if (!live.empty() &&
            (rng.nextBelow(2) == 0 || live.size() >= 100)) {
            slab.release(live.back());
            live.pop_back();
        } else {
            live.push_back(slab.acquire());
        }
    }
    EXPECT_EQ(slab.capacity(), high_water);
}

struct LinkedElsewhere
{
    LinkedElsewhere *chain = nullptr; //!< the spare link the pool uses
    int payload = 0;
};

TEST(Slab, CustomLinkMemberWorks)
{
    Slab<LinkedElsewhere, &LinkedElsewhere::chain> slab(4);
    LinkedElsewhere *a = slab.acquire();
    LinkedElsewhere *b = slab.acquire();
    a->payload = 1;
    b->payload = 2;
    slab.release(a);
    slab.release(b);
    EXPECT_EQ(slab.acquire(), b); // LIFO through the custom link
    EXPECT_EQ(slab.acquire(), a);
}

/**
 * Map-based reference bookkeeping in the shape of the pre-refactor
 * GcManager: per-batch-slot state tracked in an unordered_map, fed
 * purely from the completion stream the engine produces. Batches are
 * identified at erase time by their migration count — each round
 * launches batches with pairwise-distinct counts, so the match is
 * unambiguous.
 */
struct MapModel
{
    struct SlotState
    {
        std::uint64_t reads = 0;
        std::uint64_t programs = 0;
    };
    std::unordered_map<std::uint32_t, SlotState> live;
    std::set<std::uint64_t> expectedCounts; //!< this round's batches
    std::uint64_t erases = 0;

    void
    observe(FlashOp op, std::uint32_t slot)
    {
        SlotState &s = live[slot]; // created on first sighting
        switch (op) {
          case FlashOp::Read:
            ++s.reads;
            break;
          case FlashOp::Program:
            // A paired program is issued by its read's completion, so
            // programs can never catch up with reads mid-flight.
            ASSERT_LT(s.programs, s.reads);
            ++s.programs;
            break;
          case FlashOp::Erase: {
            // Erase is strictly last and pairs every read.
            ASSERT_EQ(s.reads, s.programs);
            const auto it = expectedCounts.find(s.reads);
            ASSERT_NE(it, expectedCounts.end())
                << "erase for an unknown batch (count " << s.reads
                << ")";
            expectedCounts.erase(it);
            live.erase(slot);
            ++erases;
            break;
          }
        }
    }

    bool idle() const { return live.empty() && expectedCounts.empty(); }
};

TEST(SlabGcCrossCheck, RandomBatchStormMatchesMapModel)
{
    FlashGeometry geo;
    geo.numChannels = 2;
    geo.chipsPerChannel = 2;
    geo.diesPerChip = 2;
    geo.planesPerDie = 2;
    geo.blocksPerPlane = 64;
    geo.pagesPerBlock = 8;

    EventQueue events;
    Slab<MemoryRequest> arena;
    std::vector<std::unique_ptr<FlashChip>> chips;
    std::vector<std::unique_ptr<Channel>> channels;
    std::vector<std::unique_ptr<FlashController>> controllers;
    std::vector<FlashController *> raw;
    std::unique_ptr<GcManager> gc;

    MapModel model;
    std::uint64_t completions = 0;

    for (std::uint32_t i = 0; i < geo.numChips(); ++i)
        chips.push_back(std::make_unique<FlashChip>(i, geo));
    for (std::uint32_t c = 0; c < geo.numChannels; ++c) {
        channels.push_back(std::make_unique<Channel>(c));
        std::vector<FlashChip *> channel_chips;
        for (std::uint32_t off = 0; off < geo.chipsPerChannel; ++off)
            channel_chips.push_back(chips[geo.chipIndex(c, off)].get());
        controllers.push_back(std::make_unique<FlashController>(
            events, *channels[c], channel_chips, FlashTiming{},
            geo.pageSizeBytes, 0, [&](MemoryRequest *req) {
                ++completions;
                model.observe(req->op, req->gcBatch);
                gc->onRequestFinished(req);
            }));
        raw.push_back(controllers.back().get());
    }
    gc = std::make_unique<GcManager>(events, geo, raw, arena, nullptr);

    Rng rng(99);
    std::uint64_t launched = 0;
    std::uint64_t migrations_total = 0;

    for (int round = 0; round < 12; ++round) {
        GcBatchList batches;
        const std::uint64_t n = 1 + rng.nextBelow(4);
        // Distinct migration counts make erase->batch matching
        // unambiguous in the model.
        std::set<std::uint64_t> counts;
        while (counts.size() < n)
            counts.insert(rng.nextBelow(geo.pagesPerBlock));
        for (const std::uint64_t migs : counts) {
            GcBatch &batch = batches.append();
            PhysAddr base{};
            base.channel = static_cast<std::uint32_t>(
                rng.nextBelow(geo.numChannels));
            base.chipInChannel = static_cast<std::uint32_t>(
                rng.nextBelow(geo.chipsPerChannel));
            base.block = static_cast<std::uint32_t>(
                rng.nextBelow(geo.blocksPerPlane / 2));
            batch.victimBasePpn = geo.compose(base);
            for (std::uint64_t m = 0; m < migs; ++m) {
                PhysAddr from = geo.decompose(batch.victimBasePpn);
                from.page = static_cast<std::uint32_t>(m);
                PhysAddr to = from;
                to.block += geo.blocksPerPlane / 2;
                batch.migrations.push_back(GcMigration{
                    m, geo.compose(from), geo.compose(to)});
            }
            migrations_total += migs;
            model.expectedCounts.insert(migs);
        }

        const std::uint64_t before = gc->stats().batches;
        gc->launch(batches);
        EXPECT_EQ(gc->stats().batches, before + n);
        launched += n;

        events.run();
        EXPECT_TRUE(gc->idle());
        EXPECT_TRUE(model.idle());
        EXPECT_EQ(arena.liveCount(), 0u) << "GC requests leaked";
    }

    EXPECT_EQ(gc->stats().batches, launched);
    EXPECT_EQ(gc->stats().migrationReads, migrations_total);
    EXPECT_EQ(gc->stats().migrationPrograms, migrations_total);
    EXPECT_EQ(gc->stats().erases, launched);
    EXPECT_EQ(model.erases, launched);
    EXPECT_EQ(completions, 2 * migrations_total + launched);

    // Steady state: every request recycled; the arena's high-water
    // capacity is bounded by the largest in-flight round.
    EXPECT_EQ(arena.freeCount(), arena.capacity());
}

} // namespace
} // namespace spk
