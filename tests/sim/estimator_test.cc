/**
 * @file
 * Fast-fidelity estimator behavior.
 *
 * Covers the contracts the two-fidelity sweep machinery depends on:
 * the estimator is deterministic, fast cells shard exactly like exact
 * cells (bit-identical across thread counts), mixing fast cells into
 * an array never perturbs the exact cells, and on a pinned
 * mini-campaign the estimate tracks the exact engine's headline
 * bandwidth within a documented tolerance (the full 12-exhibit error
 * table lives in bench/README.md; bench_calibration enforces it).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/device_array.hh"
#include "sim/estimator.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

DeviceJob
makeJob(SchedulerKind kind, Fidelity fidelity, std::uint32_t seed = 31)
{
    DeviceJob job;
    job.cfg = SsdConfig::withChips(8);
    job.cfg.geometry.blocksPerPlane = 16;
    job.cfg.geometry.pagesPerBlock = 32;
    job.cfg.scheduler = kind;
    job.cfg.seed = 7000 + seed;
    job.fidelity = fidelity;

    SyntheticConfig wl;
    wl.numIos = 200;
    wl.spanBytes = job.cfg.geometry.totalPages() *
                   job.cfg.geometry.pageSizeBytes / 2;
    wl.seed = seed;
    job.trace = generateSynthetic(wl);
    return job;
}

TEST(Estimator, Deterministic)
{
    const DeviceJob job = makeJob(SchedulerKind::SPK3, Fidelity::Fast);
    const MetricsSnapshot a = estimateDevice(job);
    const MetricsSnapshot b = estimateDevice(job);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.bandwidthKBps, 0.0);
    EXPECT_GT(a.iosCompleted, 0u);
}

TEST(Estimator, FastCellsReportNoReliabilityOrSeriesData)
{
    // The estimator does not model fault injection or parity; those
    // counters must read zero (not garbage) so sweep consumers can
    // rely on them.
    const DeviceJob job = makeJob(SchedulerKind::VAS, Fidelity::Fast);
    const MetricsSnapshot m = estimateDevice(job);
    EXPECT_EQ(m.readRetries, 0u);
    EXPECT_EQ(m.uncorrectableReads, 0u);
    EXPECT_EQ(m.programFailures, 0u);
    EXPECT_EQ(m.parityUpdates, 0u);
    EXPECT_EQ(m.reconstructedReads, 0u);
    EXPECT_TRUE(m.streams.empty());
}

TEST(Estimator, ShardedFastSweepMatchesSequentialBitForBit)
{
    std::vector<DeviceJob> jobs;
    for (std::uint32_t d = 0; d < 6; ++d) {
        jobs.push_back(makeJob(d % 2 == 0 ? SchedulerKind::SPK3
                                          : SchedulerKind::VAS,
                               Fidelity::Fast, 31 + d));
    }

    DeviceArray sequential(jobs);
    sequential.run(1);

    for (const unsigned threads : {2u, 4u}) {
        DeviceArray sharded(jobs);
        sharded.run(threads);
        ASSERT_EQ(sharded.results().size(), jobs.size());
        for (std::size_t d = 0; d < jobs.size(); ++d) {
            EXPECT_EQ(sequential.results()[d], sharded.results()[d])
                << "fast cell " << d << " diverged at " << threads
                << " threads";
        }
    }
}

TEST(Estimator, MixedFidelityLeavesExactCellsBitIdentical)
{
    // fidelity=exact must mean exact: running fast cells in the same
    // array (any interleaving, any thread count) cannot perturb an
    // exact cell's snapshot.
    std::vector<DeviceJob> exact_only;
    exact_only.push_back(makeJob(SchedulerKind::SPK3, Fidelity::Exact));
    exact_only.push_back(makeJob(SchedulerKind::VAS, Fidelity::Exact, 32));

    std::vector<DeviceJob> mixed;
    mixed.push_back(makeJob(SchedulerKind::SPK3, Fidelity::Fast, 40));
    mixed.push_back(exact_only[0]);
    mixed.push_back(makeJob(SchedulerKind::VAS, Fidelity::Fast, 41));
    mixed.push_back(exact_only[1]);

    DeviceArray reference(exact_only);
    reference.run(1);
    DeviceArray array(mixed);
    array.run(2);

    EXPECT_EQ(reference.results()[0], array.results()[1]);
    EXPECT_EQ(reference.results()[1], array.results()[3]);
}

TEST(Estimator, TracksExactBandwidthOnPinnedMiniCampaign)
{
    // Pinned mini-campaign: 8-chip device, two schedulers, two seeds.
    // The committed calibration's pooled bandwidth median error across
    // the 12 full-size exhibits is ~8% (bench/README.md), but a
    // 4-cell sample of small devices sits in the model's weakest
    // regime, so this test only guards against the calibration rotting
    // wholesale: each cell must be within 2x of the exact bandwidth,
    // and the mean absolute log-error below log(1.6). Tightening this
    // requires re-running bench_calibration, not tweaking here.
    double sum_abs_log_err = 0.0;
    int cells = 0;
    for (const auto kind : {SchedulerKind::VAS, SchedulerKind::SPK3}) {
        for (const std::uint32_t seed : {31u, 97u}) {
            DeviceJob exact = makeJob(kind, Fidelity::Exact, seed);
            DeviceJob fast = exact;
            fast.fidelity = Fidelity::Fast;

            DeviceArray array({exact, fast});
            array.run(2);
            const double exact_bw = array.results()[0].bandwidthKBps;
            const double fast_bw = array.results()[1].bandwidthKBps;
            ASSERT_GT(exact_bw, 0.0);
            ASSERT_GT(fast_bw, 0.0);

            const double ratio = fast_bw / exact_bw;
            EXPECT_GT(ratio, 0.5) << schedulerKindName(kind)
                                  << " seed " << seed;
            EXPECT_LT(ratio, 2.0) << schedulerKindName(kind)
                                  << " seed " << seed;
            sum_abs_log_err += std::fabs(std::log(ratio));
            ++cells;
        }
    }
    EXPECT_LT(sum_abs_log_err / cells, std::log(1.6));
}

} // namespace
} // namespace spk
