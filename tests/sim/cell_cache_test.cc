/**
 * @file
 * Persistent cell cache: bit-exact snapshot round-trips, key
 * sensitivity to every input that can change a result, hit/miss
 * accounting, corruption tolerance, and warm-run bit-identity
 * through DeviceArray.
 */

#include <gtest/gtest.h>

#include <bit>
#include <filesystem>
#include <fstream>

#include "sim/cell_cache.hh"
#include "sim/device_array.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

/** Fresh per-test cache directory under the test's working dir. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = "cell_cache_test_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** A snapshot with every field set to an awkward value: doubles that
 *  do not round-trip through short decimal text, full retry-step and
 *  per-stream slices. */
MetricsSnapshot
fullSnapshot()
{
    MetricsSnapshot m;
    m.scheduler = "spk3";
    m.makespan = 123456789012345ull;
    m.deviceActiveTime = 98765432109876ull;
    m.iosCompleted = 4242;
    m.bytesRead = 1ull << 40;
    m.bytesWritten = (1ull << 40) + 1;
    m.bandwidthKBps = 0.1 + 0.2; // 0.30000000000000004
    m.iops = 1.0 / 3.0;
    m.avgLatencyNs = 2.2250738585072014e-308; // smallest normal
    m.p50LatencyNs = 1;
    m.p95LatencyNs = 2;
    m.p99LatencyNs = 3;
    m.maxLatencyNs = 4;
    m.avgReadLatencyNs = -0.0; // signed zero must survive
    m.avgWriteLatencyNs = 1e308;
    m.queueStallTime = 5;
    m.chipUtilizationPct = 99.999999999999986;
    m.flashLevelUtilizationPct = 7.0 / 11.0;
    m.interChipIdlenessPct = 13.0 / 17.0;
    m.intraChipIdlenessPct = 19.0 / 23.0;
    m.flpPct = {1.0 / 7.0, 2.0 / 7.0, 3.0 / 7.0, 4.0 / 7.0};
    m.transactions = 6;
    m.requestsServed = 7;
    m.execBusPct = 0.125;
    m.execContentionPct = 0.25;
    m.execCellPct = 0.375;
    m.execIdlePct = 0.5;
    m.staleRetries = 8;
    m.gcBatches = 9;
    m.pagesMigrated = 10;
    m.readRetries = 11;
    for (std::size_t i = 0; i < m.readRetriesByStep.size(); ++i)
        m.readRetriesByStep[i] = 100 + i;
    m.uncorrectableReads = 12;
    m.programFailures = 13;
    m.programRemaps = 14;
    m.eraseFailures = 15;
    m.blocksRetiredWear = 16;
    m.blocksRetiredProgram = 17;
    m.blocksRetiredErase = 18;
    m.failedIos = 19;
    m.degradedDies = 20;
    m.parityUpdates = 21;
    m.parityFullStripeCloses = 22;
    m.parityPartialCloses = 23;
    m.parityRmwReads = 24;
    m.reconstructedReads = 25;
    m.reconstructionReads = 26;
    m.rebuildPagesTotal = 27;
    m.rebuildPagesRebuilt = 28;
    m.softDecodeInvocations = 29;
    m.softDecodeFailures = 30;
    m.softDecodeBusyTime = 31;
    m.softDecodeStallTime = 32;
    m.gcReadFailures = 33;
    for (int s = 0; s < 2; ++s) {
        StreamMetrics sm;
        sm.name = "stream-" + std::to_string(s);
        sm.iosSubmitted = 1000 + s;
        sm.iosCompleted = 2000 + s;
        sm.bytesRead = 3000 + s;
        sm.bytesWritten = 4000 + s;
        sm.queueStallTime = 5000 + s;
        sm.bandwidthKBps = 0.1 * (s + 1) + 0.2;
        sm.iops = (s + 1) / 7.0;
        sm.avgLatencyNs = (s + 1) / 13.0;
        sm.p99LatencyNs = 6000 + s;
        sm.maxLatencyNs = 7000 + s;
        m.streams.push_back(sm);
    }
    return m;
}

DeviceJob
smallJob(std::uint64_t seed = 1)
{
    DeviceJob job;
    job.cfg = SsdConfig::withChips(8);
    job.cfg.geometry.blocksPerPlane = 16;
    job.cfg.geometry.pagesPerBlock = 32;
    job.cfg.seed = seed;

    SyntheticConfig wl;
    wl.numIos = 80;
    wl.spanBytes = 4ull << 20;
    wl.seed = seed;
    job.trace = generateSynthetic(wl);
    return job;
}

TEST(CellCacheSerialize, RoundTripIsBitExact)
{
    const MetricsSnapshot in = fullSnapshot();
    const std::string payload = CellCache::serialize(in);
    MetricsSnapshot out;
    ASSERT_TRUE(CellCache::deserialize(payload, out));

    // operator== compares doubles by value; additionally pin the bit
    // patterns of the awkward ones (-0.0 == 0.0 under ==, so the
    // equality alone would let the sign bit rot).
    EXPECT_EQ(in, out);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(in.avgReadLatencyNs),
              std::bit_cast<std::uint64_t>(out.avgReadLatencyNs));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(in.bandwidthKBps),
              std::bit_cast<std::uint64_t>(out.bandwidthKBps));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(in.avgLatencyNs),
              std::bit_cast<std::uint64_t>(out.avgLatencyNs));
    ASSERT_EQ(out.streams.size(), 2u);
    for (std::size_t s = 0; s < in.streams.size(); ++s) {
        EXPECT_EQ(
            std::bit_cast<std::uint64_t>(in.streams[s].bandwidthKBps),
            std::bit_cast<std::uint64_t>(
                out.streams[s].bandwidthKBps));
    }
    EXPECT_EQ(in.readRetriesByStep, out.readRetriesByStep);
}

TEST(CellCacheSerialize, TruncatedOrPaddedPayloadIsRejected)
{
    const std::string payload =
        CellCache::serialize(fullSnapshot());
    MetricsSnapshot out;
    EXPECT_FALSE(CellCache::deserialize("", out));
    EXPECT_FALSE(CellCache::deserialize(
        payload.substr(0, payload.size() - 1), out));
    EXPECT_FALSE(CellCache::deserialize(payload + "x", out));
}

TEST(CellCacheKey, SensitiveToEveryResultInput)
{
    const DeviceJob base = smallJob();
    const std::string key = CellCache::keyOf(base);
    EXPECT_EQ(key.size(), 32u);
    EXPECT_EQ(key, CellCache::keyOf(base)); // stable

    DeviceJob j = base;
    j.cfg.seed += 1;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.cfg.scheduler = SchedulerKind::VAS;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.cfg.geometry.pagesPerBlock *= 2;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.cfg.timing.programSlow += 1;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.cfg.ftl.overprovision += 0.01;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.cfg.nvmhc.queueDepth += 1;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.cfg.fault.readTransientRate = 1e-6;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.cfg.parity.enabled = true;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.cfg.faroWindow += 1;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.preconditionGc = true;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.fidelity = Fidelity::Fast;
    EXPECT_NE(CellCache::keyOf(j), key);

    // Trace content, not identity: an equal-content deep copy keys
    // identically; any record change re-keys.
    j = base;
    j.trace = TraceRef(base.trace.get());
    EXPECT_EQ(CellCache::keyOf(j), key);
    Trace changed = base.trace.get();
    changed[0].offsetBytes += 4096;
    j.trace = std::move(changed);
    EXPECT_NE(CellCache::keyOf(j), key);
}

TEST(CellCacheKey, SensitiveToStreamSet)
{
    DeviceJob base = smallJob();
    HostStreamConfig stream;
    stream.name = "a";
    stream.trace = base.trace;
    stream.iodepth = 8;
    base.trace = TraceRef();
    base.streams = {stream};
    const std::string key = CellCache::keyOf(base);

    DeviceJob j = base;
    j.streams[0].name = "b";
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.streams[0].iodepth = 16;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.streams[0].weight = 4;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.streams[0].priority = 2;
    EXPECT_NE(CellCache::keyOf(j), key);

    j = base;
    j.streams.push_back(j.streams[0]);
    j.streams[1].name = "c";
    EXPECT_NE(CellCache::keyOf(j), key);
}

TEST(CellCache, StoreThenLookupServesTheExactSnapshot)
{
    CellCache cache(freshDir("roundtrip"));
    const DeviceJob job = smallJob();
    const MetricsSnapshot want = fullSnapshot();

    MetricsSnapshot out;
    EXPECT_FALSE(cache.lookup(job, out));
    EXPECT_EQ(cache.misses(), 1u);

    cache.store(job, want);
    EXPECT_EQ(cache.stores(), 1u);

    ASSERT_TRUE(cache.lookup(job, out));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.lookups(), 2u);
    EXPECT_EQ(out, want);

    // A different job misses without disturbing the stored entry.
    EXPECT_FALSE(cache.lookup(smallJob(2), out));
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(CellCache, CorruptEntryIsAMissNotAnError)
{
    const std::string dir = freshDir("corrupt");
    CellCache cache(dir);
    const DeviceJob job = smallJob();
    cache.store(job, fullSnapshot());

    const std::string path =
        dir + "/" + CellCache::keyOf(job) + ".cell";
    ASSERT_TRUE(std::filesystem::exists(path));

    // Truncate the payload.
    {
        std::ofstream os(path,
                         std::ios::binary | std::ios::trunc);
        os << "SPKCEL2\ntruncated";
    }
    MetricsSnapshot out;
    EXPECT_FALSE(cache.lookup(job, out));

    // Garbage magic.
    {
        std::ofstream os(path,
                         std::ios::binary | std::ios::trunc);
        os << "NOTACACHEFILE";
    }
    EXPECT_FALSE(cache.lookup(job, out));

    // A fresh store repairs the entry.
    cache.store(job, fullSnapshot());
    EXPECT_TRUE(cache.lookup(job, out));
}

TEST(CellCache, WarmDeviceArrayRunIsBitIdenticalAndAllHits)
{
    CellCache cache(freshDir("device_array"));
    std::vector<DeviceJob> jobs;
    for (std::uint64_t s = 1; s <= 4; ++s)
        jobs.push_back(smallJob(s));
    jobs[3].fidelity = Fidelity::Fast;

    DeviceArrayHooks hooks;
    hooks.cache = &cache;

    DeviceArray cold(jobs);
    cold.run(2, hooks);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), jobs.size());
    EXPECT_EQ(cache.stores(), jobs.size());

    DeviceArray warm(jobs);
    warm.run(2, hooks);
    EXPECT_EQ(cache.hits(), jobs.size());
    ASSERT_EQ(warm.results().size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(cold.results()[i], warm.results()[i])
            << "cell " << i << " diverged through the cache";

    // And both match an uncached run bit for bit.
    DeviceArray plain(jobs);
    plain.run(1);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(plain.results()[i], warm.results()[i]);
}

TEST(CellCache, CaptureIoResultsCellsBypassTheCache)
{
    CellCache cache(freshDir("bypass"));
    DeviceJob job = smallJob();
    job.captureIoResults = true;

    DeviceArrayHooks hooks;
    hooks.cache = &cache;
    DeviceArray first({job});
    first.run(1, hooks);
    EXPECT_EQ(cache.lookups(), 0u);
    EXPECT_EQ(cache.stores(), 0u);
    EXPECT_FALSE(first.ioResults(0).empty());

    DeviceArray second({job});
    second.run(1, hooks);
    EXPECT_EQ(cache.lookups(), 0u);
    EXPECT_FALSE(second.ioResults(0).empty());
}

} // namespace
} // namespace spk
