/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace spk
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBoolExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, NextBoolRoughlyFair)
{
    Rng rng(19);
    int heads = 0;
    constexpr int kDraws = 10000;
    for (int i = 0; i < kDraws; ++i)
        heads += rng.nextBool(0.5) ? 1 : 0;
    EXPECT_GT(heads, kDraws * 45 / 100);
    EXPECT_LT(heads, kDraws * 55 / 100);
}

TEST(Rng, UniformishDistribution)
{
    Rng rng(23);
    int buckets[10] = {};
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
        buckets[rng.nextBelow(10)]++;
    for (const int count : buckets) {
        EXPECT_GT(count, kDraws / 10 * 8 / 10);
        EXPECT_LT(count, kDraws / 10 * 12 / 10);
    }
}

} // namespace
} // namespace spk
