/**
 * @file
 * RingDeque behaves like std::deque for the operations the simulator
 * uses, and stops allocating once it reaches its high-water mark.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#define SPK_COUNT_ALLOCS
#include "sim/alloc_counter.hh"
#include "sim/ring_deque.hh"
#include "sim/rng.hh"

namespace spk
{
namespace
{

TEST(RingDeque, PushPopBothEnds)
{
    RingDeque<int> dq;
    EXPECT_TRUE(dq.empty());
    dq.push_back(2);
    dq.push_back(3);
    dq.push_front(1);
    EXPECT_EQ(dq.size(), 3u);
    EXPECT_EQ(dq.front(), 1);
    EXPECT_EQ(dq.back(), 3);
    dq.pop_front();
    EXPECT_EQ(dq.front(), 2);
    dq.pop_back();
    EXPECT_EQ(dq.back(), 2);
    dq.pop_front();
    EXPECT_TRUE(dq.empty());
}

TEST(RingDeque, IterationAndFindAcrossWrap)
{
    RingDeque<int> dq;
    // Force the head to travel so live elements wrap the buffer edge.
    for (int i = 0; i < 6; ++i)
        dq.push_back(i);
    for (int i = 0; i < 5; ++i)
        dq.pop_front();
    for (int i = 6; i < 12; ++i)
        dq.push_back(i);

    std::vector<int> seen;
    for (const int v : dq)
        seen.push_back(v);
    EXPECT_EQ(seen, (std::vector<int>{5, 6, 7, 8, 9, 10, 11}));

    const auto it = std::find(dq.begin(), dq.end(), 9);
    ASSERT_NE(it, dq.end());
    EXPECT_EQ(it - dq.begin(), 4);
    EXPECT_EQ(*(dq.begin() + 2), 7);
}

TEST(RingDeque, EraseShiftsTail)
{
    RingDeque<int> dq;
    for (int i = 0; i < 5; ++i)
        dq.push_back(i);
    dq.erase(std::find(dq.begin(), dq.end(), 2));
    std::vector<int> seen(dq.begin(), dq.end());
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 3, 4}));
    dq.erase(dq.begin());
    dq.erase(dq.end() - 1);
    seen.assign(dq.begin(), dq.end());
    EXPECT_EQ(seen, (std::vector<int>{1, 3}));
}

TEST(RingDeque, MatchesStdDequeUnderRandomOps)
{
    RingDeque<int> dq;
    std::deque<int> ref;
    Rng rng(99);
    for (int step = 0; step < 20'000; ++step) {
        const auto op = rng.nextBelow(5);
        const int v = static_cast<int>(rng.nextBelow(1000));
        if (op == 0 || ref.size() < 2) {
            dq.push_back(v);
            ref.push_back(v);
        } else if (op == 1) {
            dq.push_front(v);
            ref.push_front(v);
        } else if (op == 2) {
            dq.pop_front();
            ref.pop_front();
        } else if (op == 3) {
            dq.pop_back();
            ref.pop_back();
        } else {
            const auto at = rng.nextBelow(ref.size());
            dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(at));
            ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(at));
        }
        ASSERT_EQ(dq.size(), ref.size());
        if (!ref.empty()) {
            ASSERT_EQ(dq.front(), ref.front());
            ASSERT_EQ(dq.back(), ref.back());
        }
    }
    EXPECT_TRUE(std::equal(dq.begin(), dq.end(), ref.begin()));
}

TEST(RingDeque, SteadyStateFlowThroughIsAllocationFree)
{
    RingDeque<int> dq;
    for (int i = 0; i < 100; ++i)
        dq.push_back(i); // high-water mark
    while (!dq.empty())
        dq.pop_front();

    const AllocWindow window;
    // A std::deque frees and re-allocates a block every ~64 elements
    // here; the ring must not touch the heap at all.
    for (int cycle = 0; cycle < 1000; ++cycle) {
        for (int i = 0; i < 100; ++i)
            dq.push_back(i);
        for (int i = 0; i < 100; ++i)
            dq.pop_front();
    }
    EXPECT_EQ(window.count(), 0u);
}

} // namespace
} // namespace spk
