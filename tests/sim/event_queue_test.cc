/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace spk
{
namespace
{

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.nextEventTick(), kTickMax);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 10)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 10);
    EXPECT_EQ(q.now(), 9u);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [] {});
    EXPECT_EQ(q.run(4), 4u);
    EXPECT_EQ(q.size(), 6u);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, RunUntilDispatchesOnlyDueEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, SchedulingInThePastDies)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

TEST(EventQueue, DispatchedCounterAccumulates)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.dispatched(), 5u);
}

} // namespace
} // namespace spk
