/**
 * @file
 * Unit tests for BusyTracker, Histogram and RunningAverage.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace spk
{
namespace
{

TEST(BusyTracker, SimpleInterval)
{
    BusyTracker t;
    t.claim(100);
    t.release(150);
    EXPECT_EQ(t.busyTime(200), 50u);
    EXPECT_FALSE(t.busy());
}

TEST(BusyTracker, OpenIntervalCountsUpToNow)
{
    BusyTracker t;
    t.claim(10);
    EXPECT_TRUE(t.busy());
    EXPECT_EQ(t.busyTime(60), 50u);
}

TEST(BusyTracker, NestedClaimsMergeIntoOneInterval)
{
    BusyTracker t;
    t.claim(0);
    t.claim(10);
    t.release(20);
    EXPECT_TRUE(t.busy());
    t.release(50);
    EXPECT_EQ(t.busyTime(100), 50u);
}

TEST(BusyTracker, UtilizationFraction)
{
    BusyTracker t;
    t.claim(0);
    t.release(25);
    EXPECT_DOUBLE_EQ(t.utilization(100), 0.25);
    EXPECT_DOUBLE_EQ(BusyTracker{}.utilization(0), 0.0);
}

TEST(BusyTracker, ReleaseWithoutClaimDies)
{
    BusyTracker t;
    EXPECT_DEATH(t.release(10), "without matching claim");
}

TEST(BusyTracker, ResetClearsEverything)
{
    BusyTracker t;
    t.claim(0);
    t.release(10);
    t.reset();
    EXPECT_EQ(t.busyTime(100), 0u);
    EXPECT_EQ(t.depth(), 0);
}

TEST(Histogram, MeanMinMaxCount)
{
    Histogram h;
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, QuantileBucketsAreMonotonic)
{
    Histogram h;
    for (Tick v = 1; v <= 1024; ++v)
        h.add(v);
    EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a;
    Histogram b;
    a.add(5);
    b.add(500);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 5u);
    EXPECT_EQ(a.max(), 500u);
}

TEST(Histogram, ZeroLandsInFirstBucket)
{
    Histogram h;
    h.add(0);
    EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(RunningAverage, Mean)
{
    RunningAverage avg;
    avg.add(1.0);
    avg.add(2.0);
    avg.add(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    avg.reset();
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
}

} // namespace
} // namespace spk
