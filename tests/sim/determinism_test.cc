/**
 * @file
 * Determinism properties of the event kernel: identical schedules
 * must dispatch identically, regardless of how the run is sliced.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace spk
{
namespace
{

/** Record of one dispatched event: (tick, payload id). */
using Log = std::vector<std::pair<Tick, int>>;

Log
runSchedule(std::uint64_t seed, bool sliced)
{
    EventQueue q;
    Rng rng(seed);
    Log log;

    // Self-rescheduling chains starting at random ticks, including
    // many same-tick collisions (tick space deliberately tiny).
    for (int i = 0; i < 64; ++i) {
        const Tick when = rng.nextBelow(16);
        q.schedule(when, [&q, &log, i, when] {
            log.emplace_back(when, i);
            q.scheduleAfter(i % 4, [&log, &q, i] {
                log.emplace_back(q.now(), 1000 + i);
            });
        });
    }

    if (sliced) {
        // Drain in arbitrary slices: step + runUntil + run.
        q.step();
        q.runUntil(7);
        q.step();
        q.run(5);
        q.run();
    } else {
        q.run();
    }
    return log;
}

TEST(Determinism, SlicedAndContinuousRunsMatch)
{
    for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
        const Log a = runSchedule(seed, false);
        const Log b = runSchedule(seed, true);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

TEST(Determinism, TicksNeverGoBackwards)
{
    const Log log = runSchedule(5, false);
    for (std::size_t i = 1; i < log.size(); ++i)
        EXPECT_GE(log[i].first, log[i - 1].first);
}

TEST(Determinism, SameTickPreservesScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    // Schedule at the same tick from different "earlier" events.
    q.schedule(1, [&] { q.schedule(10, [&] { order.push_back(1); }); });
    q.schedule(2, [&] { q.schedule(10, [&] { order.push_back(2); }); });
    q.schedule(3, [&] { q.schedule(10, [&] { order.push_back(3); }); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

/** Property sweep: random schedules across seeds stay deterministic. */
class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DeterminismSweep, ReplayIdentical)
{
    const Log a = runSchedule(GetParam(), false);
    const Log b = runSchedule(GetParam(), false);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34, 55));

} // namespace
} // namespace spk
