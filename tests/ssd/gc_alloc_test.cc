/**
 * @file
 * GC-path allocation gate (ROADMAP "GC-path allocation", retired).
 *
 * PRs 1–2 made the host-I/O path allocation-free; the request-arena
 * refactor extended the same slab discipline to the GC engine:
 * migration requests come from the device-wide MemoryRequest arena
 * with intrusive batch/pair fields, batches live in a flat
 * recycled-slot table, and the FTL hands batches over through
 * recycled GcBatchList storage. The former <= ceiling ratchet
 * (~72k allocs on this probe) is therefore retired: steady-state GC
 * execution must not allocate at all.
 */

#define SPK_COUNT_ALLOCS
#include "sim/alloc_counter.hh"

#include <gtest/gtest.h>

#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

TEST(GcAlloc, SteadyStateGcExecutionIsAllocationFree)
{
    SsdConfig cfg = SsdConfig::withChips(8);
    cfg.geometry.blocksPerPlane = 16;
    cfg.geometry.pagesPerBlock = 32;
    cfg.scheduler = SchedulerKind::SPK3;
    cfg.ftl.overprovision = 0.15;

    Ssd ssd(cfg);
    ssd.preconditionForGc(); // 95% full, 30% churned
    const std::uint64_t span = static_cast<std::uint64_t>(
        static_cast<double>(cfg.geometry.totalPages()) *
        (1.0 - cfg.ftl.overprovision) *
        static_cast<double>(cfg.geometry.pageSizeBytes) * 0.6);

    // Warmup: a write-dominated random stream (same shape as the
    // Figure 17 stress sweep) drives sustained GC and establishes
    // every high-water mark — request arena, batch-slot table,
    // migration scratch, event pool, controller queues.
    const Trace warmup =
        fixedSizeStream(400, 16384, 0.9, span, 5 * kMicrosecond, 61);
    ssd.replay(warmup);
    ssd.run();
    const MetricsSnapshot warm = ssd.metrics();
    ASSERT_GT(warm.gcBatches, 0u);
    ASSERT_GT(warm.pagesMigrated, 0u);

    // Measured phase: the same stream again, shifted in time —
    // identical backlog and GC-pressure shape, so warmup established
    // exactly the high-water marks this run needs. Scheduling
    // (replay) happens outside the window; the window covers the
    // entire simulation run, GC collection and execution included.
    Trace probe =
        fixedSizeStream(400, 16384, 0.9, span, 5 * kMicrosecond, 61);
    const Tick start = ssd.events().now();
    for (auto &rec : probe)
        rec.arrival += start;
    ssd.replay(probe);

    const AllocWindow window;
    ssd.run();
    const std::uint64_t allocs = window.count();
    const MetricsSnapshot m = ssd.metrics();

    // The measured window must actually exercise GC, otherwise the
    // zero-allocation assertion pins nothing.
    ASSERT_GT(m.gcBatches, warm.gcBatches);
    ASSERT_GT(m.pagesMigrated, warm.pagesMigrated);

    // The ratchet, fully tightened: the GC execution path shares the
    // allocation-free discipline of the host-I/O path.
    EXPECT_EQ(allocs, 0u)
        << "steady-state GC run allocated " << allocs
        << " times; the request-arena path regressed";
}

} // namespace
} // namespace spk
