/**
 * @file
 * GC-path allocation baseline (ROADMAP "GC-path allocation" seed).
 *
 * The steady-state host-I/O path is allocation-free (asserted in
 * tests/sim/event_pool_test.cc), but GcManager still heap-allocates
 * its MemoryRequests and tracks them in node-based maps. This test
 * pins the current allocation count of a GC-heavy run as a <=
 * ceiling so the planned slab refactor can ratchet it toward zero —
 * and so no intermediate change quietly makes the GC path worse.
 */

#define SPK_COUNT_ALLOCS
#include "sim/alloc_counter.hh"

#include <gtest/gtest.h>

#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

TEST(GcAllocBaseline, GcHeavyRunStaysUnderPinnedCeiling)
{
    SsdConfig cfg = SsdConfig::withChips(8);
    cfg.geometry.blocksPerPlane = 16;
    cfg.geometry.pagesPerBlock = 32;
    cfg.scheduler = SchedulerKind::SPK3;
    cfg.ftl.overprovision = 0.15;

    Ssd ssd(cfg);
    ssd.preconditionForGc(); // 95% full, 30% churned
    const std::uint64_t span = static_cast<std::uint64_t>(
        static_cast<double>(cfg.geometry.totalPages()) *
        (1.0 - cfg.ftl.overprovision) *
        static_cast<double>(cfg.geometry.pageSizeBytes) * 0.6);
    // Write-dominated random stream so GC keeps firing during the
    // measured window (same shape as the Figure 17 stress sweep).
    const Trace trace =
        fixedSizeStream(400, 16384, 0.9, span, 5 * kMicrosecond, 61);
    ssd.replay(trace);

    const AllocWindow window;
    ssd.run();
    const std::uint64_t allocs = window.count();
    const MetricsSnapshot m = ssd.metrics();

    // The run must actually exercise GC, otherwise the ceiling pins
    // nothing.
    ASSERT_GT(m.gcBatches, 0u);
    ASSERT_GT(m.pagesMigrated, 0u);

    // Today the GC engine allocates per request/batch; the pinned
    // ceiling is the measured count (~72.3k, deterministic) plus
    // ~30% slack for container-growth differences across standard
    // library implementations. The slab PR should drop this to 0 and
    // flip the check to EXPECT_EQ(allocs, 0u).
    EXPECT_GT(allocs, 0u)
        << "GC path became allocation-free: ratchet the ceiling to 0";
    constexpr std::uint64_t kPinnedCeiling = 95000;
    EXPECT_LE(allocs, kPinnedCeiling)
        << "GC-heavy run allocated more than the pinned baseline ("
        << allocs << " > " << kPinnedCeiling
        << "); the GC path regressed";
}

} // namespace
} // namespace spk
