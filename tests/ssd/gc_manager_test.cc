/**
 * @file
 * Direct unit tests for the GC execution engine: per-batch
 * read -> program -> erase sequencing against real controllers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ssd/gc_manager.hh"

namespace spk
{
namespace
{

struct Fixture
{
    FlashGeometry geo;
    EventQueue events;
    std::vector<std::unique_ptr<Channel>> channels;
    std::vector<std::unique_ptr<FlashChip>> chips;
    std::vector<std::unique_ptr<FlashController>> controllers;
    std::vector<FlashController *> raw;
    Slab<MemoryRequest> arena;
    std::unique_ptr<GcManager> gc;
    int drainedCalls = 0;

    /** Every completed request in completion order (op recorded). */
    std::vector<FlashOp> completedOps;

    Fixture()
    {
        geo.numChannels = 2;
        geo.chipsPerChannel = 1;
        geo.diesPerChip = 2;
        geo.planesPerDie = 2;
        geo.blocksPerPlane = 8;
        geo.pagesPerBlock = 4;

        for (std::uint32_t i = 0; i < geo.numChips(); ++i)
            chips.push_back(std::make_unique<FlashChip>(i, geo));
        for (std::uint32_t c = 0; c < geo.numChannels; ++c) {
            channels.push_back(std::make_unique<Channel>(c));
            std::vector<FlashChip *> channel_chips{
                chips[geo.chipIndex(c, 0)].get()};
            controllers.push_back(std::make_unique<FlashController>(
                events, *channels[c], channel_chips, FlashTiming{},
                geo.pageSizeBytes, 0, [this](MemoryRequest *req) {
                    completedOps.push_back(req->op);
                    gc->onRequestFinished(req);
                }));
            raw.push_back(controllers.back().get());
        }
        gc = std::make_unique<GcManager>(events, geo, raw, arena,
                                         [this] { ++drainedCalls; });
    }

    GcBatch &
    makeBatch(GcBatchList &list, std::uint32_t migrations)
    {
        GcBatch &batch = list.append();
        batch.planeIdx = 0;
        batch.victimBlock = 0;
        // Victim pages in chip 0, block 0; destinations in block 1.
        PhysAddr base{};
        base.block = 0;
        batch.victimBasePpn = geo.compose(base);
        for (std::uint32_t i = 0; i < migrations; ++i) {
            PhysAddr from = base;
            from.page = i;
            PhysAddr to = base;
            to.block = 1;
            to.page = i;
            batch.migrations.push_back(GcMigration{
                i, geo.compose(from), geo.compose(to)});
        }
        return batch;
    }
};

TEST(GcManager, EmptyBatchGoesStraightToErase)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 0);
    f.gc->launch(batches);
    EXPECT_FALSE(f.gc->idle());
    f.events.run();
    EXPECT_TRUE(f.gc->idle());
    ASSERT_EQ(f.completedOps.size(), 1u);
    EXPECT_EQ(f.completedOps[0], FlashOp::Erase);
    EXPECT_EQ(f.gc->stats().erases, 1u);
    EXPECT_EQ(f.gc->stats().migrationReads, 0u);
}

TEST(GcManager, MigrationsSequenceReadProgramErase)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 3);
    f.gc->launch(batches);
    f.events.run();

    ASSERT_EQ(f.completedOps.size(), 7u); // 3 reads + 3 programs + 1 erase
    EXPECT_EQ(f.gc->stats().migrationReads, 3u);
    EXPECT_EQ(f.gc->stats().migrationPrograms, 3u);
    EXPECT_EQ(f.gc->stats().erases, 1u);

    // The erase is strictly last.
    EXPECT_EQ(f.completedOps.back(), FlashOp::Erase);
    // No program may complete before at least one read did.
    bool seen_read = false;
    for (const auto op : f.completedOps) {
        if (op == FlashOp::Read)
            seen_read = true;
        if (op == FlashOp::Program) {
            EXPECT_TRUE(seen_read);
        }
    }
}

TEST(GcManager, MultipleBatchesRunConcurrently)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 2);
    // Second batch on the other chip (channel 1).
    GcBatch &other = f.makeBatch(batches, 2);
    for (auto &mig : other.migrations) {
        PhysAddr a = f.geo.decompose(mig.from);
        a.channel = 1;
        mig.from = f.geo.compose(a);
        PhysAddr b = f.geo.decompose(mig.to);
        b.channel = 1;
        mig.to = f.geo.compose(b);
    }
    {
        PhysAddr v = f.geo.decompose(other.victimBasePpn);
        v.channel = 1;
        other.victimBasePpn = f.geo.compose(v);
    }
    f.gc->launch(batches);
    f.events.run();
    EXPECT_TRUE(f.gc->idle());
    EXPECT_EQ(f.gc->stats().batches, 2u);
    EXPECT_EQ(f.gc->stats().erases, 2u);
    EXPECT_EQ(f.completedOps.size(), 2u * (2 + 2) + 2);
}

TEST(GcManager, ProgressCallbackFiresPerCompletion)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 2);
    f.gc->launch(batches);
    f.events.run();
    // One callback per finished GC request (2R + 2P + 1E).
    EXPECT_EQ(f.drainedCalls, 5);
}

TEST(GcManager, UnknownCompletionDies)
{
    Fixture f;
    MemoryRequest bogus;
    EXPECT_DEATH(f.gc->onRequestFinished(&bogus), "unknown");
}

} // namespace
} // namespace spk
