/**
 * @file
 * Direct unit tests for the GC execution engine: per-batch
 * read -> program -> erase sequencing against real controllers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ssd/gc_manager.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

struct Fixture
{
    FlashGeometry geo;
    EventQueue events;
    std::vector<std::unique_ptr<Channel>> channels;
    std::vector<std::unique_ptr<FlashChip>> chips;
    std::vector<std::unique_ptr<FlashController>> controllers;
    std::vector<FlashController *> raw;
    Slab<MemoryRequest> arena;
    std::unique_ptr<GcManager> gc;
    int drainedCalls = 0;
    int retiredCalls = 0;

    /** Every completed request in completion order (op recorded). */
    std::vector<FlashOp> completedOps;

    explicit Fixture(std::uint32_t cap = kDefaultGcBatchesPerPlane)
    {
        geo.numChannels = 2;
        geo.chipsPerChannel = 1;
        geo.diesPerChip = 2;
        geo.planesPerDie = 2;
        geo.blocksPerPlane = 8;
        geo.pagesPerBlock = 4;

        for (std::uint32_t i = 0; i < geo.numChips(); ++i)
            chips.push_back(std::make_unique<FlashChip>(i, geo));
        for (std::uint32_t c = 0; c < geo.numChannels; ++c) {
            channels.push_back(std::make_unique<Channel>(c));
            std::vector<FlashChip *> channel_chips{
                chips[geo.chipIndex(c, 0)].get()};
            controllers.push_back(std::make_unique<FlashController>(
                events, *channels[c], channel_chips, FlashTiming{},
                geo.pageSizeBytes, 0, [this](MemoryRequest *req) {
                    completedOps.push_back(req->op);
                    gc->onRequestFinished(req);
                }));
            raw.push_back(controllers.back().get());
        }
        gc = std::make_unique<GcManager>(events, geo, raw, arena,
                                         [this] { ++drainedCalls; },
                                         cap);
        gc->setBatchRetiredHook([this] { ++retiredCalls; });
    }

    GcBatch &
    makeBatch(GcBatchList &list, std::uint32_t migrations)
    {
        GcBatch &batch = list.append();
        batch.planeIdx = 0;
        batch.victimBlock = 0;
        // Victim pages in chip 0, block 0; destinations in block 1.
        PhysAddr base{};
        base.block = 0;
        batch.victimBasePpn = geo.compose(base);
        for (std::uint32_t i = 0; i < migrations; ++i) {
            PhysAddr from = base;
            from.page = i;
            PhysAddr to = base;
            to.block = 1;
            to.page = i;
            batch.migrations.push_back(GcMigration{
                i, geo.compose(from), geo.compose(to)});
        }
        return batch;
    }
};

TEST(GcManager, EmptyBatchGoesStraightToErase)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 0);
    f.gc->launch(batches);
    EXPECT_FALSE(f.gc->idle());
    f.events.run();
    EXPECT_TRUE(f.gc->idle());
    ASSERT_EQ(f.completedOps.size(), 1u);
    EXPECT_EQ(f.completedOps[0], FlashOp::Erase);
    EXPECT_EQ(f.gc->stats().erases, 1u);
    EXPECT_EQ(f.gc->stats().migrationReads, 0u);
}

TEST(GcManager, MigrationsSequenceReadProgramErase)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 3);
    f.gc->launch(batches);
    f.events.run();

    ASSERT_EQ(f.completedOps.size(), 7u); // 3 reads + 3 programs + 1 erase
    EXPECT_EQ(f.gc->stats().migrationReads, 3u);
    EXPECT_EQ(f.gc->stats().migrationPrograms, 3u);
    EXPECT_EQ(f.gc->stats().erases, 1u);

    // The erase is strictly last.
    EXPECT_EQ(f.completedOps.back(), FlashOp::Erase);
    // No program may complete before at least one read did.
    bool seen_read = false;
    for (const auto op : f.completedOps) {
        if (op == FlashOp::Read)
            seen_read = true;
        if (op == FlashOp::Program) {
            EXPECT_TRUE(seen_read);
        }
    }
}

TEST(GcManager, MultipleBatchesRunConcurrently)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 2);
    // Second batch on the other chip (channel 1).
    GcBatch &other = f.makeBatch(batches, 2);
    for (auto &mig : other.migrations) {
        PhysAddr a = f.geo.decompose(mig.from);
        a.channel = 1;
        mig.from = f.geo.compose(a);
        PhysAddr b = f.geo.decompose(mig.to);
        b.channel = 1;
        mig.to = f.geo.compose(b);
    }
    {
        PhysAddr v = f.geo.decompose(other.victimBasePpn);
        v.channel = 1;
        other.victimBasePpn = f.geo.compose(v);
    }
    f.gc->launch(batches);
    f.events.run();
    EXPECT_TRUE(f.gc->idle());
    EXPECT_EQ(f.gc->stats().batches, 2u);
    EXPECT_EQ(f.gc->stats().erases, 2u);
    EXPECT_EQ(f.completedOps.size(), 2u * (2 + 2) + 2);
}

TEST(GcManager, ProgressCallbackFiresPerCompletion)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 2);
    f.gc->launch(batches);
    f.events.run();
    // One callback per finished GC request (2R + 2P + 1E).
    EXPECT_EQ(f.drainedCalls, 5);
}

TEST(GcManager, UnknownCompletionDies)
{
    Fixture f;
    MemoryRequest bogus;
    EXPECT_DEATH(f.gc->onRequestFinished(&bogus), "unknown");
}

TEST(GcManager, RetirementHookFiresPerBatch)
{
    Fixture f;
    GcBatchList batches;
    f.makeBatch(batches, 2);
    f.gc->launch(batches);
    EXPECT_EQ(f.retiredCalls, 0);
    f.events.run();
    EXPECT_EQ(f.retiredCalls, 1);
}

TEST(GcManager, AdmissionBoundTracksLiveBatchesPerPlane)
{
    Fixture f(/*cap=*/2);
    GcBatchList batches;
    f.makeBatch(batches, 1);
    f.makeBatch(batches, 1);
    EXPECT_FALSE(f.gc->planeSaturated(0));
    f.gc->launch(batches);
    // Two live batches on plane 0: at the bound, not past it.
    EXPECT_EQ(f.gc->liveBatchesOnPlane(0), 2u);
    EXPECT_TRUE(f.gc->planeSaturated(0));
    EXPECT_FALSE(f.gc->planeSaturated(1));
    f.events.run();
    // Retirement returns the admission shares.
    EXPECT_EQ(f.gc->liveBatchesOnPlane(0), 0u);
    EXPECT_FALSE(f.gc->planeSaturated(0));
    EXPECT_EQ(f.retiredCalls, 2);
    EXPECT_EQ(f.gc->stats().overCapLaunches, 0u);
}

TEST(GcManager, NonUrgentLaunchPastBoundDies)
{
    Fixture f(/*cap=*/1);
    GcBatchList first;
    f.makeBatch(first, 1);
    f.gc->launch(first);
    ASSERT_TRUE(f.gc->planeSaturated(0));
    GcBatchList second;
    f.makeBatch(second, 1);
    EXPECT_DEATH(f.gc->launch(second), "admission bound violated");
}

TEST(GcManager, UrgentLaunchBypassesBoundAndIsCounted)
{
    Fixture f(/*cap=*/1);
    GcBatchList first;
    f.makeBatch(first, 0);
    f.gc->launch(first);
    ASSERT_TRUE(f.gc->planeSaturated(0));
    GcBatchList second;
    f.makeBatch(second, 0);
    f.gc->launch(second, /*urgent=*/true);
    EXPECT_EQ(f.gc->liveBatchesOnPlane(0), 2u);
    EXPECT_EQ(f.gc->stats().overCapLaunches, 1u);
    f.events.run();
    EXPECT_TRUE(f.gc->idle());
    EXPECT_EQ(f.gc->liveBatchesOnPlane(0), 0u);
}

/**
 * FTL-side deferral, deterministically: a needy plane whose admission
 * the predicate rejects is skipped and counted; the urgent variant
 * collects it anyway (emergency reclaim must not be gated).
 */
TEST(GcAdmission, FtlDefersRejectedPlanesAndCountsThem)
{
    FlashGeometry geo;
    geo.numChannels = 1;
    geo.chipsPerChannel = 1;
    geo.diesPerChip = 1;
    geo.planesPerDie = 1;
    geo.blocksPerPlane = 4;
    geo.pagesPerBlock = 4;
    FtlConfig cfg;
    cfg.overprovision = 0.25;
    cfg.gcFreeBlockThreshold = 2;

    Ftl ftl(geo, cfg);
    // Rewrite a handful of hot pages until the single plane is below
    // the GC threshold; the stale copies give GC victims to reclaim.
    Lpn lpn = 0;
    while (!ftl.gcNeeded()) {
        ASSERT_NE(ftl.allocateWrite(lpn % 4), kInvalidPage);
        ++lpn;
    }

    bool admit = false;
    ftl.setGcAdmission([&admit](std::uint64_t) { return admit; });

    // Rejected: nothing collected, the deferral is counted.
    EXPECT_TRUE(ftl.collectGc().empty());
    EXPECT_EQ(ftl.stats().gcDeferrals, 1u);
    EXPECT_TRUE(ftl.gcNeeded());

    // Urgent collection ignores the gate entirely.
    EXPECT_FALSE(ftl.collectGcUrgent().empty());
    EXPECT_EQ(ftl.stats().gcDeferrals, 1u);

    // Once admitted again, normal collection proceeds.
    while (!ftl.gcNeeded()) {
        ASSERT_NE(ftl.allocateWrite(lpn % 4), kInvalidPage);
        ++lpn;
    }
    admit = true;
    EXPECT_FALSE(ftl.collectGc().empty());
    EXPECT_EQ(ftl.stats().gcDeferrals, 1u);
}

/**
 * Device-level admission: a GC-heavy run under the tightest bound
 * (cap 1) holds the per-plane invariant at every event and still
 * completes every host I/O. Deferrals are expected to be rare here —
 * a plane's own GC holds its chip hostage, so the plane seldom dips
 * below threshold while its batch is still in flight — which is
 * exactly why the flat table is statically sizable at planes x cap.
 */
TEST(GcAdmission, DeviceRespectsAdmissionBoundUnderPressure)
{
    SsdConfig cfg = SsdConfig::withChips(8);
    cfg.geometry.blocksPerPlane = 16;
    cfg.geometry.pagesPerBlock = 32;
    cfg.scheduler = SchedulerKind::SPK3;
    cfg.ftl.overprovision = 0.15;
    cfg.gcMaxLiveBatchesPerPlane = 1; // tightest legal bound

    Ssd ssd(cfg);
    ssd.preconditionForGc();
    const std::uint64_t span = static_cast<std::uint64_t>(
        static_cast<double>(cfg.geometry.totalPages()) *
        (1.0 - cfg.ftl.overprovision) *
        static_cast<double>(cfg.geometry.pageSizeBytes) * 0.6);
    const Trace stress =
        fixedSizeStream(400, 16384, 0.9, span, 5 * kMicrosecond, 61);
    ssd.replay(stress);

    const std::uint64_t planes =
        std::uint64_t{cfg.geometry.numChips()} *
        cfg.geometry.diesPerChip * cfg.geometry.planesPerDie;
    std::uint32_t max_live = 0;
    while (ssd.events().step()) {
        for (std::uint64_t p = 0; p < planes; ++p)
            max_live =
                std::max(max_live, ssd.gc().liveBatchesOnPlane(p));
    }
    // Non-urgent launches cannot exceed the cap (launch() panics);
    // urgent ones are the only legal spill and are counted.
    EXPECT_LE(max_live, cfg.gcMaxLiveBatchesPerPlane +
                            ssd.gc().stats().overCapLaunches);
    const MetricsSnapshot m = ssd.metrics();
    EXPECT_EQ(m.iosCompleted, 400u);
    EXPECT_GT(m.gcBatches, 0u);
}

} // namespace
} // namespace spk
