/**
 * @file
 * Tests for device configuration helpers and the metric snapshot's
 * formatting layer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ssd/config.hh"
#include "ssd/metrics.hh"

namespace spk
{
namespace
{

TEST(SsdConfigHelpers, WithChipsKeepsPaperChannelScaling)
{
    // 64 chips -> 8 channels x 8 chips (the paper's base platform).
    const auto c64 = SsdConfig::withChips(64);
    EXPECT_EQ(c64.geometry.numChannels, 8u);
    EXPECT_EQ(c64.geometry.chipsPerChannel, 8u);
    EXPECT_EQ(c64.geometry.numChips(), 64u);

    // 1024 chips -> 32 channels (paper: 1024 chips / 32 channels).
    const auto c1024 = SsdConfig::withChips(1024);
    EXPECT_EQ(c1024.geometry.numChannels, 32u);
    EXPECT_EQ(c1024.geometry.numChips(), 1024u);
}

TEST(SsdConfigHelpers, WithChipsHandlesSmallCounts)
{
    const auto c4 = SsdConfig::withChips(4);
    EXPECT_EQ(c4.geometry.numChips(), 4u);
    const auto c1 = SsdConfig::withChips(1);
    EXPECT_EQ(c1.geometry.numChips(), 1u);
}

TEST(SsdConfigHelpers, DefaultsMatchPaperSection51)
{
    const SsdConfig cfg;
    EXPECT_EQ(cfg.geometry.diesPerChip, 2u);
    EXPECT_EQ(cfg.geometry.planesPerDie, 4u);
    EXPECT_EQ(cfg.geometry.pagesPerBlock, 128u);
    EXPECT_EQ(cfg.geometry.pageSizeBytes, 2048u);
    EXPECT_EQ(cfg.timing.readLatency, 20 * kMicrosecond);
    EXPECT_EQ(cfg.timing.programFast, 200 * kMicrosecond);
    EXPECT_EQ(cfg.timing.programSlow, 2200 * kMicrosecond);
    EXPECT_EQ(cfg.nvmhc.queueDepth, 32u);
    EXPECT_EQ(cfg.scheduler, SchedulerKind::SPK3);
}

TEST(SsdConfigHelpers, ValidateRejectsZeroWindow)
{
    SsdConfig cfg;
    cfg.faroWindow = 0;
    EXPECT_DEATH(cfg.validate(), "faroWindow");
}

TEST(SchedulerKindHelpers, ParseRoundTrip)
{
    for (const auto kind :
         {SchedulerKind::VAS, SchedulerKind::PAS, SchedulerKind::SPK1,
          SchedulerKind::SPK2, SchedulerKind::SPK3}) {
        EXPECT_EQ(parseSchedulerKind(schedulerKindName(kind)), kind);
    }
    EXPECT_EQ(parseSchedulerKind("spk3"), SchedulerKind::SPK3);
    EXPECT_EQ(parseSchedulerKind("vas"), SchedulerKind::VAS);
    EXPECT_DEATH((void)parseSchedulerKind("bogus"), "unknown");
}

TEST(MetricsFormatting, SnapshotStreamsEveryHeadlineField)
{
    MetricsSnapshot m;
    m.scheduler = "SPK3";
    m.bandwidthKBps = 1234.5;
    m.iops = 99.0;
    m.avgLatencyNs = 5000.0;
    m.p50LatencyNs = 4000;
    m.p99LatencyNs = 9000;
    std::ostringstream os;
    os << m;
    const std::string text = os.str();
    for (const char *needle :
         {"SPK3", "bandwidth", "IOPS", "latency", "p50", "idle",
          "transactions"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST(MetricsFormatting, SummaryIsOneLine)
{
    MetricsSnapshot m;
    m.scheduler = "VAS";
    const std::string s = m.summary();
    EXPECT_EQ(s.find('\n'), std::string::npos);
    EXPECT_NE(s.find("VAS"), std::string::npos);
}

} // namespace
} // namespace spk
