/**
 * @file
 * Unit tests for block allocation, wear and GC victim selection.
 */

#include <gtest/gtest.h>

#include <set>

#include "ftl/block_manager.hh"

namespace spk
{
namespace
{

FlashGeometry
geo()
{
    FlashGeometry g;
    g.numChannels = 2;
    g.chipsPerChannel = 2;
    g.diesPerChip = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 4;
    g.pagesPerBlock = 4;
    return g;
}

TEST(BlockManager, PlaneCountMatchesGeometry)
{
    BlockManager bm(geo(), 100);
    EXPECT_EQ(bm.numPlanes(), 4ull * 2 * 2); // chips * dies * planes
}

TEST(BlockManager, PlaneIndexRoundTrip)
{
    const auto g = geo();
    BlockManager bm(g, 100);
    for (std::uint64_t p = 0; p < bm.numPlanes(); ++p) {
        const PhysAddr addr = bm.planeAddr(p);
        EXPECT_EQ(bm.planeIndexOf(addr), p);
    }
}

TEST(BlockManager, PlaneIndexStripesChipsFirst)
{
    const auto g = geo();
    BlockManager bm(g, 100);
    // Consecutive plane indices 0..numChips-1 must land on distinct
    // chips (the allocator's channel-stripe property).
    std::set<std::uint32_t> chips;
    for (std::uint32_t p = 0; p < g.numChips(); ++p) {
        const PhysAddr a = bm.planeAddr(p);
        chips.insert(g.chipIndex(a.channel, a.chipInChannel));
    }
    EXPECT_EQ(chips.size(), g.numChips());
}

TEST(BlockManager, AllocatesSequentialPagesWithinBlock)
{
    const auto g = geo();
    BlockManager bm(g, 100);
    const auto p0 = bm.allocatePage(0);
    const auto p1 = bm.allocatePage(0);
    ASSERT_TRUE(p0 && p1);
    const PhysAddr a0 = g.decompose(*p0);
    const PhysAddr a1 = g.decompose(*p1);
    EXPECT_EQ(a0.block, a1.block);
    EXPECT_EQ(a1.page, a0.page + 1);
}

TEST(BlockManager, ExhaustsPlaneThenReturnsNullopt)
{
    const auto g = geo();
    BlockManager bm(g, 100);
    // Host allocations stop one block short: that block is the GC
    // migration reserve.
    const std::uint64_t host_capacity =
        std::uint64_t{g.blocksPerPlane - 1} * g.pagesPerBlock;
    for (std::uint64_t i = 0; i < host_capacity; ++i)
        EXPECT_TRUE(bm.allocatePage(0).has_value());
    EXPECT_FALSE(bm.allocatePage(0).has_value());
    EXPECT_EQ(bm.freePages(0), g.pagesPerBlock);

    // The GC path may consume the reserve...
    for (std::uint32_t i = 0; i < g.pagesPerBlock; ++i)
        EXPECT_TRUE(bm.allocatePage(0, /*gc_reserve=*/true).has_value());
    // ...after which the plane is truly full for everyone.
    EXPECT_FALSE(bm.allocatePage(0, true).has_value());
    EXPECT_EQ(bm.freePages(0), 0u);
}

TEST(BlockManager, EraseReturnsBlockToFreeList)
{
    const auto g = geo();
    BlockManager bm(g, 100);
    // Fill block 0 (it is consumed first).
    for (std::uint32_t i = 0; i < g.pagesPerBlock; ++i)
        (void)bm.allocatePage(0);
    (void)bm.allocatePage(0); // opens the next block
    const std::uint32_t free_before = bm.freeBlocks(0);
    EXPECT_TRUE(bm.eraseBlock(0, 0));
    EXPECT_EQ(bm.freeBlocks(0), free_before + 1);
    EXPECT_EQ(bm.block(0, 0).eraseCount, 1u);
    EXPECT_EQ(bm.maxEraseCount(), 1u);
}

TEST(BlockManager, EraseWithLivePagesDies)
{
    const auto g = geo();
    BlockManager bm(g, 100);
    for (std::uint32_t i = 0; i < g.pagesPerBlock; ++i)
        (void)bm.allocatePage(0);
    bm.addValid(0, 0, 1);
    EXPECT_DEATH(bm.eraseBlock(0, 0), "live");
}

TEST(BlockManager, EnduranceRetiresBlock)
{
    const auto g = geo();
    BlockManager bm(g, 2); // two erases allowed
    for (std::uint32_t i = 0; i < g.pagesPerBlock; ++i)
        (void)bm.allocatePage(0);
    EXPECT_FALSE(bm.eraseBlock(0, 0) == false); // first erase fine
    for (std::uint32_t i = 0; i < g.pagesPerBlock * 2; ++i)
        (void)bm.allocatePage(0);
    // Second erase hits the endurance limit -> bad block.
    EXPECT_FALSE(bm.eraseBlock(0, 0));
    EXPECT_EQ(bm.badBlocks(), 1u);
    EXPECT_EQ(bm.block(0, 0).state, BlockState::Bad);
}

TEST(BlockManager, GcVictimPicksFewestValid)
{
    const auto g = geo();
    BlockManager bm(g, 100);
    // Fill two blocks.
    for (std::uint32_t i = 0; i < 2 * g.pagesPerBlock + 1; ++i)
        (void)bm.allocatePage(0);
    bm.addValid(0, 0, 3); // block 0: 3 valid
    bm.addValid(0, 1, 1); // block 1: 1 valid
    const auto victim = bm.pickGcVictim(0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 1u);
}

TEST(BlockManager, GcVictimIgnoresActiveAndFree)
{
    BlockManager bm(geo(), 100);
    (void)bm.allocatePage(0); // block 0 active, none full
    EXPECT_FALSE(bm.pickGcVictim(0).has_value());
}

TEST(BlockManager, AddValidUnderflowDies)
{
    BlockManager bm(geo(), 100);
    EXPECT_DEATH(bm.addValid(0, 0, -1), "underflow");
}

} // namespace
} // namespace spk
