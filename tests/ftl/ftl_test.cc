/**
 * @file
 * Unit + property tests for the FTL facade: translation, write
 * allocation striping, GC and readdressing callbacks.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ftl/ftl.hh"

namespace spk
{
namespace
{

FlashGeometry
geo()
{
    FlashGeometry g;
    g.numChannels = 2;
    g.chipsPerChannel = 2;
    g.diesPerChip = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 8;
    return g;
}

FtlConfig
cfg()
{
    FtlConfig c;
    c.overprovision = 0.25;
    c.gcFreeBlockThreshold = 2;
    return c;
}

TEST(Ftl, LogicalCapacityHonoursOverprovision)
{
    Ftl ftl(geo(), cfg());
    EXPECT_EQ(ftl.logicalPages(),
              static_cast<std::uint64_t>(geo().totalPages() * 0.75));
}

TEST(Ftl, UnwrittenReadIsInvalid)
{
    Ftl ftl(geo(), cfg());
    EXPECT_EQ(ftl.translateRead(0), kInvalidPage);
}

TEST(Ftl, WriteThenReadTranslates)
{
    Ftl ftl(geo(), cfg());
    const Ppn ppn = ftl.allocateWrite(7);
    ASSERT_NE(ppn, kInvalidPage);
    EXPECT_EQ(ftl.translateRead(7), ppn);
    EXPECT_EQ(ftl.stats().hostWrites, 1u);
}

TEST(Ftl, ConsecutiveWritesStripeAcrossChips)
{
    const auto g = geo();
    Ftl ftl(g, cfg());
    std::set<std::uint32_t> chips;
    for (Lpn lpn = 0; lpn < g.numChips(); ++lpn) {
        const Ppn ppn = ftl.allocateWrite(lpn);
        chips.insert(g.chipOf(ppn));
    }
    // The first numChips writes must land on numChips distinct chips:
    // this is what gives RIOS its system-level parallelism.
    EXPECT_EQ(chips.size(), g.numChips());
}

TEST(Ftl, RewriteInvalidatesOldPage)
{
    Ftl ftl(geo(), cfg());
    const Ppn first = ftl.allocateWrite(3);
    const Ppn second = ftl.allocateWrite(3);
    EXPECT_NE(first, second);
    EXPECT_EQ(ftl.translateRead(3), second);
    EXPECT_FALSE(ftl.mapping().isValid(first));
}

TEST(Ftl, GcNeededAfterHeavyChurn)
{
    Ftl ftl(geo(), cfg());
    Rng rng(3);
    EXPECT_FALSE(ftl.gcNeeded());
    // Hammer a small working set until planes run out of free blocks.
    const std::uint64_t working = ftl.logicalPages() / 4;
    for (int i = 0; i < 4000 && !ftl.gcNeeded(); ++i)
        (void)ftl.allocateWrite(rng.nextBelow(working));
    EXPECT_TRUE(ftl.gcNeeded());

    const auto batches = ftl.collectGc();
    EXPECT_FALSE(batches.empty());
    EXPECT_GT(ftl.stats().blocksErased, 0u);
}

TEST(Ftl, GcPreservesMappingConsistency)
{
    Ftl ftl(geo(), cfg());
    Rng rng(9);
    const std::uint64_t working = ftl.logicalPages() / 4;
    std::vector<Ppn> last(working, kInvalidPage);
    for (int i = 0; i < 6000; ++i) {
        const Lpn lpn = rng.nextBelow(working);
        const Ppn ppn = ftl.allocateWrite(lpn);
        if (ppn == kInvalidPage) {
            ftl.collectGc();
            continue;
        }
        last[lpn] = ppn;
        if (ftl.gcNeeded())
            ftl.collectGc();
    }
    // Every written LPN still resolves, and GC may have moved it.
    for (Lpn lpn = 0; lpn < working; ++lpn) {
        if (last[lpn] == kInvalidPage)
            continue;
        const Ppn now = ftl.translateRead(lpn);
        ASSERT_NE(now, kInvalidPage);
        EXPECT_TRUE(ftl.mapping().isValid(now));
        EXPECT_EQ(ftl.mapping().reverseLookup(now), lpn);
    }
}

TEST(Ftl, ReaddressCallbackFiresPerMigration)
{
    Ftl ftl(geo(), cfg());
    std::uint64_t callbacks = 0;
    ftl.setReaddressCallback(
        [&](Lpn, Ppn, Ppn) { ++callbacks; });

    Rng rng(4);
    const std::uint64_t working = ftl.logicalPages() / 4;
    for (int i = 0; i < 4000 && !ftl.gcNeeded(); ++i)
        (void)ftl.allocateWrite(rng.nextBelow(working));
    ftl.collectGc();
    EXPECT_EQ(callbacks, ftl.stats().pagesMigrated);
}

TEST(Ftl, CallbackReportsAccurateMove)
{
    Ftl ftl(geo(), cfg());
    ftl.setReaddressCallback([&](Lpn lpn, Ppn from, Ppn to) {
        EXPECT_NE(from, to);
        EXPECT_EQ(ftl.translateRead(lpn), to);
    });
    Rng rng(6);
    const std::uint64_t working = ftl.logicalPages() / 4;
    for (int i = 0; i < 5000; ++i) {
        (void)ftl.allocateWrite(rng.nextBelow(working));
        if (ftl.gcNeeded())
            ftl.collectGc();
    }
}

TEST(Ftl, PreconditionFillsRequestedFraction)
{
    Ftl ftl(geo(), cfg());
    Rng rng(12);
    ftl.precondition(0.5, 0.0, rng);
    EXPECT_EQ(ftl.mapping().liveCount(), ftl.logicalPages() / 2);
}

TEST(Ftl, PreconditionChurnFragments)
{
    Ftl ftl(geo(), cfg());
    Rng rng(12);
    ftl.precondition(0.6, 0.5, rng);
    // Churn must have produced invalid pages somewhere: at least one
    // Full block has fewer valid pages than its capacity.
    const auto &g = ftl.geometry();
    bool fragmented = false;
    for (std::uint64_t p = 0; p < ftl.blocks().numPlanes(); ++p) {
        for (std::uint32_t b = 0; b < g.blocksPerPlane; ++b) {
            const auto &info = ftl.blocks().block(p, b);
            if (info.state == BlockState::Full &&
                info.validPages < g.pagesPerBlock) {
                fragmented = true;
            }
        }
    }
    EXPECT_TRUE(fragmented);
}

} // namespace
} // namespace spk
