/**
 * @file
 * Unit tests for the die-level parity stripe map, centered on a
 * randomized cross-check against an independent reference model.
 *
 * The reference tracks written members as per-stripe die sets keyed
 * by coordinates it derives with its own div/mod arithmetic over the
 * documented Ppn layout — it shares no address code with the map
 * under test, so disagreement means one of them misdecodes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>

#include "ftl/parity_map.hh"

namespace spk
{
namespace
{

FlashGeometry
smallGeometry()
{
    FlashGeometry geo;
    geo.numChannels = 2;
    geo.chipsPerChannel = 2;
    geo.diesPerChip = 4;
    geo.planesPerDie = 2;
    geo.blocksPerPlane = 4;
    geo.pagesPerBlock = 8;
    geo.validate();
    return geo;
}

/** Independent reference for the parity map's per-stripe state. */
class ReferenceModel
{
  public:
    explicit ReferenceModel(const FlashGeometry &geo) : geo_(geo) {}

    // ppn = (((chip*D + die)*P + plane)*B + block)*K + page, with
    // chip = chipInChannel*numChannels + channel folded into 'chip'.
    Ppn
    ppnOf(std::uint32_t chip, std::uint32_t die, std::uint32_t plane,
          std::uint32_t block, std::uint32_t page) const
    {
        std::uint64_t v = chip;
        v = v * geo_.diesPerChip + die;
        v = v * geo_.planesPerDie + plane;
        v = v * geo_.blocksPerPlane + block;
        v = v * geo_.pagesPerBlock + page;
        return v;
    }

    std::uint64_t
    stripeOf(std::uint32_t chip, std::uint32_t plane,
             std::uint32_t block, std::uint32_t page) const
    {
        const std::uint64_t per_chip =
            std::uint64_t{geo_.planesPerDie} * geo_.blocksPerPlane *
            geo_.pagesPerBlock;
        return chip * per_chip +
               (std::uint64_t{plane} * geo_.blocksPerPlane + block) *
                   geo_.pagesPerBlock +
               page;
    }

    std::uint32_t
    parityDie(std::uint32_t block, std::uint32_t page) const
    {
        return (block + page) % geo_.diesPerChip;
    }

    void
    markData(std::uint32_t chip, std::uint32_t die, std::uint32_t plane,
             std::uint32_t block, std::uint32_t page)
    {
        written_[stripeOf(chip, plane, block, page)].insert(die);
    }

    void
    markParity(std::uint32_t chip, std::uint32_t plane,
               std::uint32_t block, std::uint32_t page)
    {
        written_[stripeOf(chip, plane, block, page)].insert(
            parityDie(block, page));
    }

    void
    clearParity(std::uint32_t chip, std::uint32_t plane,
                std::uint32_t block, std::uint32_t page)
    {
        written_[stripeOf(chip, plane, block, page)].erase(
            parityDie(block, page));
    }

    void
    clearBlock(std::uint32_t chip, std::uint32_t die,
               std::uint32_t plane, std::uint32_t block)
    {
        for (std::uint32_t pg = 0; pg < geo_.pagesPerBlock; ++pg) {
            auto &dies = written_[stripeOf(chip, plane, block, pg)];
            if (dies.erase(die) == 0)
                continue;
            const std::uint32_t pdie = parityDie(block, pg);
            if (die != pdie && hasDataMember(dies, pdie))
                dies.erase(pdie);
        }
    }

    void
    clearDie(std::uint32_t chip, std::uint32_t die)
    {
        for (std::uint32_t plane = 0; plane < geo_.planesPerDie;
             ++plane) {
            for (std::uint32_t block = 0; block < geo_.blocksPerPlane;
                 ++block)
                clearBlock(chip, die, plane, block);
        }
    }

    std::uint32_t
    mask(std::uint32_t chip, std::uint32_t plane, std::uint32_t block,
         std::uint32_t page) const
    {
        const auto it = written_.find(stripeOf(chip, plane, block, page));
        if (it == written_.end())
            return 0;
        std::uint32_t m = 0;
        for (const std::uint32_t die : it->second)
            m |= 1u << die;
        return m;
    }

  private:
    static bool
    hasDataMember(const std::set<std::uint32_t> &dies,
                  std::uint32_t pdie)
    {
        for (const std::uint32_t d : dies) {
            if (d != pdie)
                return true;
        }
        return false;
    }

    FlashGeometry geo_;
    std::map<std::uint64_t, std::set<std::uint32_t>> written_;
};

TEST(ParityMap, GeometryAndRoundTrips)
{
    const FlashGeometry geo = smallGeometry();
    StripeParityMap map(geo);
    const ReferenceModel ref(geo);

    EXPECT_EQ(map.stripeCount(),
              geo.totalPages() / geo.diesPerChip);
    EXPECT_EQ(map.dies(), geo.diesPerChip);
    EXPECT_EQ(map.stripesPerChip() * geo.numChips(),
              map.stripeCount());

    for (StripeId s = 0; s < map.stripeCount(); ++s) {
        std::set<Ppn> members;
        for (std::uint32_t d = 0; d < geo.diesPerChip; ++d) {
            const Ppn p = map.memberPpn(s, d);
            EXPECT_EQ(map.stripeOf(p), s);
            members.insert(p);
            const PhysAddr a = geo.decompose(p);
            EXPECT_EQ(a.die, d);
            EXPECT_EQ(map.isParityPage(p), d == map.parityDie(s));
        }
        // D distinct pages, identical coordinates except the die.
        EXPECT_EQ(members.size(), geo.diesPerChip);
        const PhysAddr pa = geo.decompose(map.parityPpn(s));
        EXPECT_EQ(map.parityDie(s), ref.parityDie(pa.block, pa.page));
    }
}

TEST(ParityMap, RandomizedReferenceCrossCheck)
{
    const FlashGeometry geo = smallGeometry();
    StripeParityMap map(geo);
    ReferenceModel ref(geo);
    std::mt19937_64 rng(0xb10c5);

    const auto pick = [&rng](std::uint32_t n) {
        return static_cast<std::uint32_t>(rng() % n);
    };

    const auto verifyAll = [&] {
        for (std::uint32_t chip = 0; chip < geo.numChips(); ++chip) {
            for (std::uint32_t plane = 0; plane < geo.planesPerDie;
                 ++plane) {
                for (std::uint32_t block = 0;
                     block < geo.blocksPerPlane; ++block) {
                    for (std::uint32_t page = 0;
                         page < geo.pagesPerBlock; ++page) {
                        const StripeId s = map.stripeOf(
                            ref.ppnOf(chip, 0, plane, block, page));
                        const std::uint32_t expect =
                            ref.mask(chip, plane, block, page);
                        ASSERT_EQ(map.mask(s), expect)
                            << "chip " << chip << " plane " << plane
                            << " block " << block << " page " << page;
                        const std::uint32_t pbit =
                            1u << ref.parityDie(block, page);
                        EXPECT_EQ(map.dataMask(s), expect & ~pbit);
                        EXPECT_EQ(map.parityWritten(s),
                                  (expect & pbit) != 0);
                        const std::uint32_t all =
                            (1u << geo.diesPerChip) - 1;
                        EXPECT_EQ(map.fullyWritten(s),
                                  (expect & (all & ~pbit)) ==
                                      (all & ~pbit));
                    }
                }
            }
        }
    };

    for (int step = 0; step < 2000; ++step) {
        const std::uint32_t chip = pick(geo.numChips());
        const std::uint32_t die = pick(geo.diesPerChip);
        const std::uint32_t plane = pick(geo.planesPerDie);
        const std::uint32_t block = pick(geo.blocksPerPlane);
        const std::uint32_t page = pick(geo.pagesPerBlock);
        const std::uint32_t roll = pick(100);
        if (roll < 50) { // data program on a non-parity slot
            if (ref.parityDie(block, page) != die) {
                map.markDataWritten(
                    ref.ppnOf(chip, die, plane, block, page));
                ref.markData(chip, die, plane, block, page);
            }
        } else if (roll < 65) { // parity close
            map.markParityWritten(map.stripeOf(
                ref.ppnOf(chip, 0, plane, block, page)));
            ref.markParity(chip, plane, block, page);
        } else if (roll < 75) { // failed close / failed program
            map.clearParityWritten(map.stripeOf(
                ref.ppnOf(chip, 0, plane, block, page)));
            ref.clearParity(chip, plane, block, page);
        } else if (roll < 90) { // erase or retire a block on one die
            map.clearBlock(ref.ppnOf(chip, die, plane, block, 0), die);
            ref.clearBlock(chip, die, plane, block);
        } else { // die revival wipes the whole die
            map.clearDie(chip, die);
            ref.clearDie(chip, die);
        }
        if (step % 100 == 99)
            verifyAll();
    }
    verifyAll();
}

TEST(ParityMap, MarkDataIsIdempotent)
{
    const FlashGeometry geo = smallGeometry();
    StripeParityMap map(geo);
    const ReferenceModel ref(geo);
    // block 1 page 0 -> parity die 1; die 0 is a data slot.
    const Ppn p = ref.ppnOf(0, 0, 0, 1, 0);
    map.markDataWritten(p);
    const StripeId s = map.stripeOf(p);
    const std::uint32_t before = map.mask(s);
    map.markDataWritten(p); // a late migration program re-reports
    EXPECT_EQ(map.mask(s), before);
}

TEST(ParityMap, DataWriteOnParitySlotPanics)
{
    const FlashGeometry geo = smallGeometry();
    StripeParityMap map(geo);
    const ReferenceModel ref(geo);
    // block 2 page 1 -> parity die (2+1)%4 == 3.
    EXPECT_DEATH(map.markDataWritten(ref.ppnOf(0, 3, 0, 2, 1)),
                 "parity slot");
}

TEST(ParityMap, ClearBlockDropsStaleParity)
{
    const FlashGeometry geo = smallGeometry();
    StripeParityMap map(geo);
    const ReferenceModel ref(geo);
    // Stripe (block 0, page 0): parity die 0; data on dies 1,2,3.
    for (std::uint32_t d = 1; d < 4; ++d)
        map.markDataWritten(ref.ppnOf(0, d, 0, 0, 0));
    const StripeId s = map.stripeOf(ref.ppnOf(0, 1, 0, 0, 0));
    map.markParityWritten(s);
    EXPECT_TRUE(map.fullyWritten(s));
    EXPECT_TRUE(map.parityWritten(s));

    // Die 2 loses its block: the survivors' parity is now stale.
    map.clearBlock(ref.ppnOf(0, 2, 0, 0, 0), 2);
    EXPECT_FALSE(map.parityWritten(s));
    EXPECT_EQ(map.dataMask(s), (1u << 1) | (1u << 3));

    // The last members leaving keeps the stripe empty, not stale.
    map.clearBlock(ref.ppnOf(0, 1, 0, 0, 0), 1);
    map.clearBlock(ref.ppnOf(0, 3, 0, 0, 0), 3);
    EXPECT_EQ(map.mask(s), 0u);
}

TEST(ParityMap, TwoDieMinimumEnforced)
{
    FlashGeometry geo = smallGeometry();
    geo.diesPerChip = 1;
    geo.validate();
    EXPECT_DEATH(StripeParityMap{geo}, "diesPerChip >= 2");
}

} // namespace
} // namespace spk
