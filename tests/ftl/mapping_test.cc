/**
 * @file
 * Unit + property tests for the page-level mapping.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "ftl/mapping.hh"
#include "sim/rng.hh"

namespace spk
{
namespace
{

FlashGeometry
geo()
{
    FlashGeometry g;
    g.numChannels = 2;
    g.chipsPerChannel = 2;
    g.diesPerChip = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 4;
    g.pagesPerBlock = 8;
    return g;
}

TEST(PageMapping, StartsUnmapped)
{
    PageMapping m(geo(), 100);
    EXPECT_EQ(m.logicalPages(), 100u);
    EXPECT_EQ(m.lookup(0), kInvalidPage);
    EXPECT_EQ(m.reverseLookup(0), kInvalidPage);
    EXPECT_FALSE(m.isValid(0));
    EXPECT_EQ(m.liveCount(), 0u);
}

TEST(PageMapping, BindAndLookup)
{
    PageMapping m(geo(), 100);
    EXPECT_EQ(m.bind(5, 42), kInvalidPage);
    EXPECT_EQ(m.lookup(5), 42u);
    EXPECT_EQ(m.reverseLookup(42), 5u);
    EXPECT_TRUE(m.isValid(42));
    EXPECT_EQ(m.liveCount(), 1u);
}

TEST(PageMapping, RebindInvalidatesOldCopy)
{
    PageMapping m(geo(), 100);
    m.bind(5, 42);
    EXPECT_EQ(m.bind(5, 77), 42u);
    EXPECT_FALSE(m.isValid(42));
    EXPECT_TRUE(m.isValid(77));
    EXPECT_EQ(m.reverseLookup(42), kInvalidPage);
    EXPECT_EQ(m.liveCount(), 1u);
}

TEST(PageMapping, BindToLivePageDies)
{
    PageMapping m(geo(), 100);
    m.bind(1, 10);
    EXPECT_DEATH(m.bind(2, 10), "live");
}

TEST(PageMapping, InvalidatePhysicalClearsForwardMap)
{
    PageMapping m(geo(), 100);
    m.bind(3, 30);
    m.invalidatePhysical(30);
    EXPECT_EQ(m.lookup(3), kInvalidPage);
    EXPECT_FALSE(m.isValid(30));
    EXPECT_EQ(m.liveCount(), 0u);
    // Idempotent on stale pages.
    m.invalidatePhysical(30);
    EXPECT_EQ(m.liveCount(), 0u);
}

TEST(PageMapping, LogicalLargerThanPhysicalDies)
{
    EXPECT_DEATH(PageMapping(geo(), geo().totalPages() + 1), "capacity");
}

TEST(PageMapping, OutOfRangeAccessDies)
{
    PageMapping m(geo(), 10);
    EXPECT_DEATH(m.lookup(10), "out-of-range");
    EXPECT_DEATH((void)m.isValid(geo().totalPages()), "out-of-range");
}

/** Property: mapping stays a bijection under random rebinding. */
TEST(PageMapping, RandomRebindKeepsBijection)
{
    const auto g = geo();
    PageMapping m(g, 64);
    Rng rng(5);
    std::unordered_map<Lpn, Ppn> shadow;
    Ppn next_free = 0;

    for (int i = 0; i < 200 && next_free < g.totalPages(); ++i) {
        const Lpn lpn = rng.nextBelow(64);
        const Ppn ppn = next_free++;
        m.bind(lpn, ppn);
        shadow[lpn] = ppn;
    }
    std::uint64_t live = 0;
    for (const auto &[lpn, ppn] : shadow) {
        EXPECT_EQ(m.lookup(lpn), ppn);
        EXPECT_EQ(m.reverseLookup(ppn), lpn);
        EXPECT_TRUE(m.isValid(ppn));
        ++live;
    }
    EXPECT_EQ(m.liveCount(), live);
}

} // namespace
} // namespace spk
