/**
 * @file
 * Wear, endurance, bad-block and allocation-policy tests for the FTL
 * stack.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ftl/ftl.hh"

namespace spk
{
namespace
{

FlashGeometry
geo()
{
    FlashGeometry g;
    g.numChannels = 2;
    g.chipsPerChannel = 2;
    g.diesPerChip = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 8;
    return g;
}

TEST(Wear, RotationSpreadsEraseCounts)
{
    FtlConfig cfg;
    cfg.overprovision = 0.25;
    Ftl ftl(geo(), cfg);
    Rng rng(31);

    // Uniform random overwrite traffic for a while.
    const std::uint64_t working = ftl.logicalPages() / 2;
    for (int i = 0; i < 20000; ++i) {
        (void)ftl.allocateWrite(rng.nextBelow(working));
        if (ftl.gcNeeded())
            ftl.collectGc();
    }

    // With rotating allocation and greedy GC, wear must spread: the
    // hottest block's erase count stays within a small factor of the
    // device mean.
    const auto &bm = ftl.blocks();
    std::uint64_t total_erases = 0;
    std::uint64_t blocks = 0;
    for (std::uint64_t p = 0; p < bm.numPlanes(); ++p) {
        for (std::uint32_t b = 0; b < geo().blocksPerPlane; ++b) {
            total_erases += bm.block(p, b).eraseCount;
            ++blocks;
        }
    }
    const double mean =
        static_cast<double>(total_erases) / static_cast<double>(blocks);
    EXPECT_GT(mean, 0.5);
    EXPECT_LT(bm.maxEraseCount(), mean * 6.0 + 4.0);
}

TEST(Wear, EnduranceExhaustionRetiresBlocksGracefully)
{
    FtlConfig cfg;
    cfg.overprovision = 0.25;
    cfg.endurance = 6; // tiny: force bad blocks quickly
    Ftl ftl(geo(), cfg);
    Rng rng(32);

    const std::uint64_t working = ftl.logicalPages() / 3;
    for (int i = 0; i < 15000; ++i) {
        if (ftl.allocateWrite(rng.nextBelow(working)) == kInvalidPage)
            break; // capacity shrank to nothing: fine
        if (ftl.gcNeeded())
            ftl.collectGc();
    }
    EXPECT_GT(ftl.blocks().badBlocks(), 0u);
    // Live mappings still resolve despite retirements.
    for (Lpn lpn = 0; lpn < working; ++lpn) {
        const Ppn ppn = ftl.translateRead(lpn);
        if (ppn != kInvalidPage) {
            EXPECT_EQ(ftl.mapping().reverseLookup(ppn), lpn);
        }
    }
}

TEST(Allocation, ChannelStripeSpreadsAcrossChipsFirst)
{
    FtlConfig cfg;
    cfg.allocation = AllocationPolicy::ChannelStripe;
    Ftl ftl(geo(), cfg);
    std::set<std::uint32_t> chips;
    for (Lpn lpn = 0; lpn < geo().numChips(); ++lpn)
        chips.insert(geo().chipOf(ftl.allocateWrite(lpn)));
    EXPECT_EQ(chips.size(), geo().numChips());
}

TEST(Allocation, PlaneFirstFillsOneChipFirst)
{
    FtlConfig cfg;
    cfg.allocation = AllocationPolicy::PlaneFirst;
    Ftl ftl(geo(), cfg);
    const std::uint32_t planes_per_chip =
        geo().diesPerChip * geo().planesPerDie;
    std::set<std::uint32_t> chips;
    for (Lpn lpn = 0; lpn < planes_per_chip; ++lpn)
        chips.insert(geo().chipOf(ftl.allocateWrite(lpn)));
    // The first planes_per_chip writes all land on one chip.
    EXPECT_EQ(chips.size(), 1u);
}

TEST(Allocation, PlaneFirstEnablesSameChipCoalescing)
{
    FtlConfig cfg;
    cfg.allocation = AllocationPolicy::PlaneFirst;
    const auto g = geo();
    Ftl ftl(g, cfg);
    const std::uint32_t planes_per_chip = g.diesPerChip * g.planesPerDie;
    // Consecutive writes land on distinct (die, plane) slots with the
    // same in-block page offset: a perfect PAL3 transaction.
    std::set<std::pair<std::uint32_t, std::uint32_t>> slots;
    std::set<std::uint32_t> pages;
    for (Lpn lpn = 0; lpn < planes_per_chip; ++lpn) {
        const PhysAddr a = g.decompose(ftl.allocateWrite(lpn));
        slots.insert({a.die, a.plane});
        pages.insert(a.page);
    }
    EXPECT_EQ(slots.size(), planes_per_chip);
    EXPECT_EQ(pages.size(), 1u);
}

TEST(Allocation, PolicyNamesPrintable)
{
    EXPECT_STREQ(allocationPolicyName(AllocationPolicy::ChannelStripe),
                 "channel-stripe");
    EXPECT_STREQ(allocationPolicyName(AllocationPolicy::PlaneFirst),
                 "plane-first");
}

/** Property sweep: plane index round trip under both policies. */
class PolicySweep : public ::testing::TestWithParam<AllocationPolicy>
{
};

TEST_P(PolicySweep, PlaneIndexRoundTrip)
{
    BlockManager bm(geo(), 100, GetParam());
    for (std::uint64_t p = 0; p < bm.numPlanes(); ++p)
        EXPECT_EQ(bm.planeIndexOf(bm.planeAddr(p)), p);
}

TEST_P(PolicySweep, GcReserveHoldsUnderChurn)
{
    FtlConfig cfg;
    cfg.overprovision = 0.25;
    cfg.allocation = GetParam();
    Ftl ftl(geo(), cfg);
    Rng rng(33);
    const std::uint64_t working = ftl.logicalPages() / 2;
    for (int i = 0; i < 8000; ++i) {
        (void)ftl.allocateWrite(rng.nextBelow(working));
        if (ftl.gcNeeded())
            ftl.collectGc();
        // Invariant: no plane ever loses its last free block to a
        // host write (GC must always have a destination).
        if (i % 500 == 0) {
            for (std::uint64_t p = 0; p < ftl.blocks().numPlanes(); ++p)
                EXPECT_GE(ftl.blocks().freePages(p), 0u);
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(
                             AllocationPolicy::ChannelStripe,
                             AllocationPolicy::PlaneFirst));

} // namespace
} // namespace spk
