/**
 * @file
 * Static wear-leveling tests: the cold-block migration path bounds
 * the erase-count spread under skewed traffic (Section 4.3's second
 * live-migration source).
 */

#include <gtest/gtest.h>

#include "ftl/ftl.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace spk
{
namespace
{

FlashGeometry
geo()
{
    FlashGeometry g;
    g.numChannels = 2;
    g.chipsPerChannel = 2;
    g.diesPerChip = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 8;
    return g;
}

/** Hammer a small hot set while a cold set pins its blocks. */
void
skewedTraffic(Ftl &ftl, int iterations, std::uint64_t seed)
{
    Rng rng(seed);
    // Cold data: fills a band of blocks that never gets rewritten.
    const std::uint64_t cold = ftl.logicalPages() / 2;
    for (Lpn lpn = 0; lpn < cold; ++lpn)
        (void)ftl.allocateWrite(lpn);
    // Hot data: constant overwrites of a small range.
    const std::uint64_t hot = ftl.logicalPages() / 16;
    for (int i = 0; i < iterations; ++i) {
        (void)ftl.allocateWrite(cold + rng.nextBelow(hot));
        if (ftl.gcNeeded())
            ftl.collectGc();
        if (ftl.wearLevelNeeded())
            ftl.collectWearLevel();
    }
}

TEST(WearLeveling, DisabledByDefault)
{
    FtlConfig cfg;
    EXPECT_EQ(cfg.wearLevelThreshold, 0u);
    Ftl ftl(geo(), cfg);
    skewedTraffic(ftl, 4000, 41);
    EXPECT_EQ(ftl.stats().wearLevelMoves, 0u);
    EXPECT_FALSE(ftl.wearLevelNeeded());
}

TEST(WearLeveling, BoundsEraseSpread)
{
    FtlConfig with;
    with.wearLevelThreshold = 8;
    Ftl leveled(geo(), with);
    skewedTraffic(leveled, 6000, 42);

    FtlConfig without;
    Ftl skewed(geo(), without);
    skewedTraffic(skewed, 6000, 42);

    EXPECT_GT(leveled.stats().wearLevelMoves, 0u);
    const auto spread_on = leveled.blocks().eraseSpread();
    const auto spread_off = skewed.blocks().eraseSpread();
    // Leveling keeps min erase moving (cold blocks recirculate).
    EXPECT_GT(spread_on.first, spread_off.first);
    // And the spread stays near the threshold (one migration per
    // trigger means slight overshoot is fine).
    EXPECT_LE(spread_on.second - spread_on.first,
              2 * with.wearLevelThreshold + 4);
}

TEST(WearLeveling, MappingStaysConsistent)
{
    FtlConfig cfg;
    cfg.wearLevelThreshold = 6;
    Ftl ftl(geo(), cfg);
    skewedTraffic(ftl, 5000, 43);
    for (Lpn lpn = 0; lpn < ftl.logicalPages(); ++lpn) {
        const Ppn ppn = ftl.translateRead(lpn);
        if (ppn != kInvalidPage) {
            EXPECT_EQ(ftl.mapping().reverseLookup(ppn), lpn);
        }
    }
}

TEST(WearLeveling, FiresReaddressCallbacks)
{
    FtlConfig cfg;
    cfg.wearLevelThreshold = 6;
    Ftl ftl(geo(), cfg);
    std::uint64_t calls = 0;
    ftl.setReaddressCallback([&](Lpn, Ppn, Ppn) { ++calls; });
    skewedTraffic(ftl, 5000, 44);
    EXPECT_EQ(calls, ftl.stats().pagesMigrated);
    EXPECT_GT(ftl.stats().wearLevelMoves, 0u);
}

TEST(WearLeveling, DeviceLevelRunChargesFlashTime)
{
    // End-to-end: a device with aggressive leveling completes the
    // same workload, strictly slower or equal (migration costs time).
    SyntheticConfig wl;
    wl.numIos = 300;
    wl.readFraction = 0.1;
    wl.writeSizes = {{8192, 1.0}};
    wl.spanBytes = 2ull << 20;
    wl.meanInterarrival = 15 * kMicrosecond;
    wl.seed = 45;
    const Trace trace = generateSynthetic(wl);

    auto run = [&](std::uint32_t threshold) {
        SsdConfig cfg;
        cfg.geometry = geo();
        cfg.geometry.blocksPerPlane = 12;
        cfg.scheduler = SchedulerKind::SPK3;
        cfg.ftl.wearLevelThreshold = threshold;
        Ssd ssd(cfg);
        ssd.replay(trace);
        ssd.run();
        EXPECT_EQ(ssd.results().size(), trace.size());
        return std::make_pair(ssd.events().now(),
                              ssd.ftl().stats().wearLevelMoves);
    };
    const auto off = run(0);
    const auto on = run(2);
    EXPECT_EQ(off.second, 0u);
    if (on.second > 0) {
        EXPECT_GE(on.first, off.first);
    }
}

TEST(WearLeveling, ColdestFullSelection)
{
    BlockManager bm(geo(), 1000);
    // Fill two blocks in plane 0; erase-cycle block 0 a few times.
    for (std::uint32_t i = 0; i < 2 * geo().pagesPerBlock; ++i)
        (void)bm.allocatePage(0);
    bm.eraseBlock(0, 0);
    for (std::uint32_t i = 0; i < geo().pagesPerBlock; ++i)
        (void)bm.allocatePage(0);
    // Now block 1 (erase count 0, Full) is colder than block 0.
    bm.addValid(0, 1, 3);
    const auto victim = bm.pickColdestFull();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->second, 1u);
    EXPECT_EQ(bm.block(0, 1).eraseCount, 0u);
}

} // namespace
} // namespace spk
